// Package histogram implements the histogram representation of datasets
// from paper §2.1: a dataset D ∈ X^n is viewed as a probability vector over
// the finite universe X, where entry x holds the fraction of rows equal
// to x. Adjacent datasets (differing in one row) have histograms at L1
// distance ≤ 2/n — each such swap moves 1/n of mass between two cells — and
// the paper's ‖D−D′‖₁ ≤ 1/n per-cell bound is the per-coordinate view of
// the same fact. The sensitivity arithmetic in mech and sparse builds on
// this representation.
package histogram

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
)

// Histogram is a probability distribution over the elements of a finite
// universe. P[i] is the probability of universe element i; entries are
// non-negative and sum to 1 (within floating-point tolerance, see Validate).
type Histogram struct {
	U universe.Universe
	P []float64
}

// tol is the normalization tolerance accepted by Validate. It is loose
// enough to absorb summation error over universes of size up to ~2^22.
const tol = 1e-9

// Uniform returns the uniform histogram over u — the algorithm's starting
// hypothesis D̂¹ in paper Figure 3.
func Uniform(u universe.Universe) *Histogram {
	n := u.Size()
	p := make([]float64, n)
	v := 1 / float64(n)
	for i := range p {
		p[i] = v
	}
	return &Histogram{U: u, P: p}
}

// FromCounts returns the histogram of a dataset given per-element counts.
// Total count must be positive.
func FromCounts(u universe.Universe, counts []int) (*Histogram, error) {
	if len(counts) != u.Size() {
		return nil, fmt.Errorf("histogram: %d counts for universe of size %d", len(counts), u.Size())
	}
	var total int
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("histogram: negative count %d at %d", c, i)
		}
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("histogram: empty dataset")
	}
	p := make([]float64, len(counts))
	for i, c := range counts {
		p[i] = float64(c) / float64(total)
	}
	return &Histogram{U: u, P: p}, nil
}

// FromRows returns the histogram of a dataset given as row indices into u.
func FromRows(u universe.Universe, rows []int) (*Histogram, error) {
	counts := make([]int, u.Size())
	for j, r := range rows {
		if r < 0 || r >= u.Size() {
			return nil, fmt.Errorf("histogram: row %d has index %d outside universe of size %d", j, r, u.Size())
		}
		counts[r]++
	}
	return FromCounts(u, counts)
}

// FromProbs wraps an explicit probability vector after validating it.
func FromProbs(u universe.Universe, p []float64) (*Histogram, error) {
	h := &Histogram{U: u, P: p}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// Validate checks non-negativity and unit total mass.
func (h *Histogram) Validate() error {
	if len(h.P) != h.U.Size() {
		return fmt.Errorf("histogram: length %d != universe size %d", len(h.P), h.U.Size())
	}
	for i, v := range h.P {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("histogram: invalid probability %v at %d", v, i)
		}
	}
	if s := vecmath.Sum(h.P); math.Abs(s-1) > tol {
		return fmt.Errorf("histogram: total mass %v != 1", s)
	}
	return nil
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{U: h.U, P: vecmath.Copy(h.P)}
}

// L1 returns ‖h − g‖₁. Total-variation distance is L1/2.
func (h *Histogram) L1(g *Histogram) float64 { return vecmath.Dist1(h.P, g.P) }

// TV returns the total-variation distance.
func (h *Histogram) TV(g *Histogram) float64 { return h.L1(g) / 2 }

// LInf returns max |h(x) − g(x)|.
func (h *Histogram) LInf(g *Histogram) float64 {
	var m float64
	for i := range h.P {
		if d := math.Abs(h.P[i] - g.P[i]); d > m {
			m = d
		}
	}
	return m
}

// KL returns the Kullback–Leibler divergence KL(g ‖ h) = Σ g(x) log(g(x)/h(x)).
// This is the multiplicative-weights potential Ψ(g, h): Lemma 3.4's regret
// bound is exactly the statement that each MW update decreases KL(D ‖ D̂t)
// by a quantifiable amount. Returns +Inf when g puts mass where h has none.
func (h *Histogram) KL(g *Histogram) float64 {
	var s float64
	for i := range h.P {
		gi := g.P[i]
		if gi == 0 {
			continue
		}
		if h.P[i] == 0 {
			return math.Inf(1)
		}
		s += gi * math.Log(gi/h.P[i])
	}
	// Guard tiny negative values from rounding when g ≈ h.
	if s < 0 && s > -1e-12 {
		return 0
	}
	return s
}

// Dot returns Σ q(x)·h(x) — the answer of the linear query q on h, in the
// paper's ⟨q, D⟩ notation.
func (h *Histogram) Dot(q []float64) float64 { return vecmath.Dot(q, h.P) }

// Expect returns E_{x←h}[f(x)] for a function given per universe index.
// This evaluates ℓ(θ; D) = Σ_x D(x)·ℓ(θ; x) when f is the per-element loss.
func (h *Histogram) Expect(f func(i int) float64) float64 {
	var s float64
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		s += p * f(i)
	}
	return s
}

// Sample draws a universe index from the distribution.
func (h *Histogram) Sample(src *sample.Source) int {
	return src.Categorical(h.P)
}

// SampleRows draws n i.i.d. rows (universe indices).
func (h *Histogram) SampleRows(src *sample.Source, n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = h.Sample(src)
	}
	return rows
}

// AdjacentRows returns a copy of rows with row j replaced by element v —
// the neighbouring dataset D′ ~ D used throughout the privacy analysis.
func AdjacentRows(rows []int, j, v int) []int {
	out := make([]int, len(rows))
	copy(out, rows)
	out[j] = v
	return out
}

// CoordinateMarginal returns the marginal distribution of the coord-th
// record coordinate: the distinct values it takes over the universe (in
// increasing order) and their probabilities under h. Useful for comparing
// a released synthetic dataset's one-way marginals with the truth.
func (h *Histogram) CoordinateMarginal(coord int) (values, probs []float64, err error) {
	if coord < 0 || coord >= h.U.Dim() {
		return nil, nil, fmt.Errorf("histogram: coordinate %d outside [0, %d)", coord, h.U.Dim())
	}
	acc := map[float64]float64{}
	buf := make([]float64, h.U.Dim())
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		acc[h.U.PointInto(i, buf)[coord]] += p
	}
	values = make([]float64, 0, len(acc))
	for v := range acc {
		values = append(values, v)
	}
	sort.Float64s(values)
	probs = make([]float64, len(values))
	for i, v := range values {
		probs[i] = acc[v]
	}
	return values, probs, nil
}

// CoordinateMean returns E_h[x_coord].
func (h *Histogram) CoordinateMean(coord int) (float64, error) {
	if coord < 0 || coord >= h.U.Dim() {
		return 0, fmt.Errorf("histogram: coordinate %d outside [0, %d)", coord, h.U.Dim())
	}
	var m float64
	buf := make([]float64, h.U.Dim())
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		m += p * h.U.PointInto(i, buf)[coord]
	}
	return m, nil
}
