package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sample"
	"repro/internal/universe"
)

func cube(t *testing.T, d int) *universe.Hypercube {
	t.Helper()
	u, err := universe.NewHypercube(d)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniform(t *testing.T) {
	u := cube(t, 3)
	h := Uniform(u)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, p := range h.P {
		if math.Abs(p-1.0/8) > 1e-12 {
			t.Errorf("P[%d] = %v, want 1/8", i, p)
		}
	}
}

func TestFromCounts(t *testing.T) {
	u := cube(t, 2)
	h, err := FromCounts(u, []int{1, 0, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.P[0]-0.25) > 1e-12 || math.Abs(h.P[2]-0.75) > 1e-12 {
		t.Errorf("P = %v", h.P)
	}
	if _, err := FromCounts(u, []int{0, 0, 0, 0}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := FromCounts(u, []int{1, -1, 0, 0}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := FromCounts(u, []int{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestFromRows(t *testing.T) {
	u := cube(t, 2)
	h, err := FromRows(u, []int{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.25, 0.25, 0}
	for i := range want {
		if math.Abs(h.P[i]-want[i]) > 1e-12 {
			t.Errorf("P[%d] = %v, want %v", i, h.P[i], want[i])
		}
	}
	if _, err := FromRows(u, []int{4}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := FromRows(u, []int{-1}); err == nil {
		t.Error("negative row accepted")
	}
}

func TestFromProbsValidate(t *testing.T) {
	u := cube(t, 1)
	if _, err := FromProbs(u, []float64{0.5, 0.5}); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	bad := [][]float64{
		{0.5, 0.6},        // mass > 1
		{-0.1, 1.1},       // negative
		{math.NaN(), 1},   // NaN
		{math.Inf(1), 0},  // Inf
		{0.5, 0.25, 0.25}, // wrong length
	}
	for _, p := range bad {
		if _, err := FromProbs(u, p); err == nil {
			t.Errorf("invalid probs %v accepted", p)
		}
	}
}

// Paper §2.1: adjacent datasets D ~ D′ have close histograms. Replacing one
// of n rows moves at most 1/n of mass out of one cell into another, so
// per-cell difference ≤ 1/n and L1 ≤ 2/n.
func TestAdjacencyDistance(t *testing.T) {
	u := cube(t, 3)
	src := sample.New(1)
	n := 40
	rows := Uniform(u).SampleRows(src, n)
	h, err := FromRows(u, rows)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		j := src.Intn(n)
		v := src.Intn(u.Size())
		rows2 := AdjacentRows(rows, j, v)
		h2, err := FromRows(u, rows2)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.LInf(h2); got > 1.0/float64(n)+1e-12 {
			t.Errorf("LInf between adjacent histograms = %v > 1/n", got)
		}
		if got := h.L1(h2); got > 2.0/float64(n)+1e-12 {
			t.Errorf("L1 between adjacent histograms = %v > 2/n", got)
		}
	}
}

func TestAdjacentRowsDoesNotMutate(t *testing.T) {
	rows := []int{1, 2, 3}
	out := AdjacentRows(rows, 0, 9)
	if rows[0] != 1 {
		t.Error("input mutated")
	}
	if out[0] != 9 || out[1] != 2 {
		t.Errorf("out = %v", out)
	}
}

func TestDistances(t *testing.T) {
	u := cube(t, 1)
	a, _ := FromProbs(u, []float64{1, 0})
	b, _ := FromProbs(u, []float64{0, 1})
	if got := a.L1(b); got != 2 {
		t.Errorf("L1 = %v, want 2", got)
	}
	if got := a.TV(b); got != 1 {
		t.Errorf("TV = %v, want 1", got)
	}
	if got := a.LInf(b); got != 1 {
		t.Errorf("LInf = %v, want 1", got)
	}
}

func TestKL(t *testing.T) {
	u := cube(t, 1)
	uni, _ := FromProbs(u, []float64{0.5, 0.5})
	point, _ := FromProbs(u, []float64{1, 0})
	// KL(point ‖ uniform) = log 2.
	if got := uni.KL(point); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("KL = %v, want log2", got)
	}
	// KL(g‖g) = 0.
	if got := uni.KL(uni); got != 0 {
		t.Errorf("KL self = %v", got)
	}
	// Mass where support is missing → +Inf.
	if got := point.KL(uni); !math.IsInf(got, 1) {
		t.Errorf("KL missing support = %v, want +Inf", got)
	}
	// KL ≥ 0 always (Gibbs).
	a, _ := FromProbs(u, []float64{0.3, 0.7})
	b, _ := FromProbs(u, []float64{0.6, 0.4})
	if got := a.KL(b); got < 0 {
		t.Errorf("KL negative: %v", got)
	}
}

// Pinsker's inequality: TV(g,h)² ≤ KL(g‖h)/2, a quantitative link the MW
// analysis leans on implicitly. Property-check on random distributions.
func TestPinsker(t *testing.T) {
	u := cube(t, 3)
	f := func(seedRaw int64) bool {
		src := sample.New(seedRaw)
		mk := func() *Histogram {
			p := make([]float64, u.Size())
			var s float64
			for i := range p {
				p[i] = src.Exponential(1) + 1e-6
				s += p[i]
			}
			for i := range p {
				p[i] /= s
			}
			h, err := FromProbs(u, p)
			if err != nil {
				t.Fatalf("bad random histogram: %v", err)
			}
			return h
		}
		g, h := mk(), mk()
		tv := g.TV(h)
		kl := h.KL(g) // KL(g ‖ h)
		return tv*tv <= kl/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndExpect(t *testing.T) {
	u := cube(t, 1)
	h, _ := FromProbs(u, []float64{0.25, 0.75})
	q := []float64{1, 0}
	if got := h.Dot(q); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Dot = %v", got)
	}
	got := h.Expect(func(i int) float64 { return float64(i * 10) })
	if math.Abs(got-7.5) > 1e-12 {
		t.Errorf("Expect = %v", got)
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	u := cube(t, 1)
	h, _ := FromProbs(u, []float64{0.2, 0.8})
	src := sample.New(5)
	n := 100000
	var ones int
	for i := 0; i < n; i++ {
		if h.Sample(src) == 1 {
			ones++
		}
	}
	if got := float64(ones) / float64(n); math.Abs(got-0.8) > 0.01 {
		t.Errorf("sample rate = %v, want 0.8", got)
	}
}

func TestSampleRowsRoundTrip(t *testing.T) {
	u := cube(t, 2)
	h, _ := FromProbs(u, []float64{0.1, 0.2, 0.3, 0.4})
	src := sample.New(6)
	rows := h.SampleRows(src, 50000)
	emp, err := FromRows(u, rows)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.L1(emp); got > 0.03 {
		t.Errorf("empirical L1 from truth = %v", got)
	}
}

func TestClone(t *testing.T) {
	u := cube(t, 1)
	h, _ := FromProbs(u, []float64{0.5, 0.5})
	c := h.Clone()
	c.P[0] = 0.9
	if h.P[0] != 0.5 {
		t.Error("Clone aliased")
	}
}
