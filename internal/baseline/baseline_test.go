package baseline

import (
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/mech"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/universe"
)

func fixture(t *testing.T, n int) (*universe.LabeledGrid, *dataset.Dataset) {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(1)
	pop, err := dataset.Skewed(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return g, dataset.SampleFrom(src, pop, n)
}

func linQuery(t *testing.T) convex.Loss {
	t.Helper()
	lq, err := convex.NewLinearQuery("q", func(x []float64) float64 {
		if x[0] > 0 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	return lq
}

func TestNewCompositionValidation(t *testing.T) {
	if _, err := NewComposition(nil, 1, 1e-6, 10); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := NewComposition(erm.LaplaceLinear{}, 1, 1e-6, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewComposition(erm.LaplaceLinear{}, 1, 0, 10); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := NewComposition(erm.LaplaceLinear{}, 0, 1e-6, 10); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestPerQueryBudgetMatchesSplit(t *testing.T) {
	c, err := NewComposition(erm.LaplaceLinear{}, 1, 1e-6, 100)
	if err != nil {
		t.Fatal(err)
	}
	eps0, delta0 := c.PerQueryBudget()
	wantEps, wantDelta, err := mech.SplitBudget(1, 1e-6, 100)
	if err != nil {
		t.Fatal(err)
	}
	if eps0 != wantEps || delta0 != wantDelta {
		t.Errorf("budget = (%v,%v), want (%v,%v)", eps0, delta0, wantEps, wantDelta)
	}
}

func TestCompositionAnswersAndExhausts(t *testing.T) {
	_, data := fixture(t, 50000)
	c, err := NewComposition(erm.LaplaceLinear{}, 1, 1e-6, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(2)
	l := linQuery(t)
	for i := 0; i < 3; i++ {
		theta, err := c.Answer(src, l, data)
		if err != nil {
			t.Fatal(err)
		}
		if theta[0] < 0 || theta[0] > 1 {
			t.Errorf("answer %v outside [0,1]", theta)
		}
	}
	if c.Answered() != 3 {
		t.Errorf("Answered = %d", c.Answered())
	}
	if _, err := c.Answer(src, l, data); err == nil {
		t.Error("answer beyond k accepted")
	}
}

// The defining weakness of the composition baseline: at fixed n and ε, its
// per-query accuracy degrades as k grows (per-query budget ~ ε/√k).
// Average answer error over the pool should be visibly worse at k = 2500
// than at k = 25.
func TestCompositionDegradesWithK(t *testing.T) {
	_, data := fixture(t, 2000)
	l := linQuery(t)
	exact, err := (Exact{}).Answer(l, data)
	if err != nil {
		t.Fatal(err)
	}
	avgAbsErr := func(k int) float64 {
		c, err := NewComposition(erm.LaplaceLinear{}, 0.5, 1e-6, k)
		if err != nil {
			t.Fatal(err)
		}
		src := sample.New(3)
		var total float64
		trials := 200
		for i := 0; i < trials; i++ {
			// Fresh baseline per trial so we can keep asking the same query.
			cc, _ := NewComposition(erm.LaplaceLinear{}, 0.5, 1e-6, k)
			_ = c
			theta, err := cc.Answer(src, l, data)
			if err != nil {
				t.Fatal(err)
			}
			total += math.Abs(theta[0] - exact[0])
		}
		return total / float64(trials)
	}
	small := avgAbsErr(25)
	large := avgAbsErr(2500)
	if large <= small {
		t.Errorf("k=2500 error (%v) not worse than k=25 error (%v)", large, small)
	}
	// Roughly √100 = 10× ratio; accept a loose band.
	if ratio := large / small; ratio < 3 {
		t.Errorf("degradation ratio = %v, want ≳ √(k2/k1)", ratio)
	}
}

func TestExactMatchesOptimize(t *testing.T) {
	_, data := fixture(t, 10000)
	l := linQuery(t)
	got, err := (Exact{}).Answer(l, data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimize.Minimize(l, data.Histogram(), optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-res.Theta[0]) > 1e-12 {
		t.Errorf("Exact = %v, optimize = %v", got, res.Theta)
	}
}
