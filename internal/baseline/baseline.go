// Package baseline implements the straw-man answering strategies the paper
// compares against in prose (§1, §4.1):
//
//   - Composition: answer each of the k CM queries independently with the
//     single-query oracle A′, splitting the (ε, δ) budget across all k
//     calls via the strong-composition schedule. Its per-query budget
//     shrinks like 1/√k, so accuracy degrades polynomially in k — the
//     behaviour PMW's polylog(k) dependence beats (paper Table 1).
//   - Exact: the non-private exact answers, an accuracy ceiling.
package baseline

import (
	"fmt"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/mech"
	"repro/internal/optimize"
	"repro/internal/sample"
)

// Composition answers each query with an independent oracle call at budget
// (ε₀, δ₀) = SplitBudget(ε, δ, k), so the whole interaction is (ε, δ)-DP by
// Theorem 3.10. Queries may arrive online; there is no shared state.
type Composition struct {
	// Oracle is the single-query algorithm A′.
	Oracle erm.Oracle
	// Eps, Delta is the total budget; K the number of queries it is
	// split across.
	Eps, Delta float64
	K          int

	eps0, delta0 float64
	answered     int
}

// NewComposition validates parameters and precomputes the per-query budget.
func NewComposition(oracle erm.Oracle, eps, delta float64, k int) (*Composition, error) {
	if oracle == nil {
		return nil, fmt.Errorf("baseline: nil oracle")
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k %d must be ≥ 1", k)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("baseline: composition baseline requires delta > 0")
	}
	eps0, delta0, err := mech.SplitBudget(eps, delta, k)
	if err != nil {
		return nil, err
	}
	return &Composition{Oracle: oracle, Eps: eps, Delta: delta, K: k, eps0: eps0, delta0: delta0}, nil
}

// PerQueryBudget returns the (ε₀, δ₀) each query receives.
func (c *Composition) PerQueryBudget() (float64, float64) { return c.eps0, c.delta0 }

// Answer answers the next query. It refuses to exceed the declared k.
func (c *Composition) Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset) ([]float64, error) {
	if c.answered >= c.K {
		return nil, fmt.Errorf("baseline: budget exhausted after %d queries", c.K)
	}
	c.answered++
	return c.Oracle.Answer(src, l, data, c.eps0, c.delta0)
}

// Answered returns the number of queries answered so far.
func (c *Composition) Answered() int { return c.answered }

// Exact answers queries with the true empirical minimizer (non-private).
type Exact struct {
	// SolverIters bounds the solve (default 800).
	SolverIters int
}

// Answer returns the exact minimizer of l on data.
func (e Exact) Answer(l convex.Loss, data *dataset.Dataset) ([]float64, error) {
	iters := e.SolverIters
	if iters <= 0 {
		iters = 800
	}
	res, err := optimize.Minimize(l, data.Histogram(), optimize.Options{MaxIters: iters})
	if err != nil {
		return nil, err
	}
	return res.Theta, nil
}
