// Package fault is a deterministic fault-injection seam for the
// durability stack: a narrow filesystem interface over exactly the os
// calls internal/persist makes, with a passthrough implementation for
// production and an injecting one that fails chosen operations from a
// seeded plan.
//
// Why it exists: the paper's mechanism is only private if the served
// transcript is exactly what the ledger paid for, and that invariant has
// to hold across every crash point of the write path — a failed fsync, a
// torn append, ENOSPC mid-checkpoint, a crash between temp-file write and
// rename. A wall-clock kill drill exercises one arbitrary point per run;
// this seam makes every durability syscall interceptable so a drill can
// enumerate the fault points of a clean run and then replay seeded
// schedules that hit each of them on purpose (see fault/drill).
//
// The seam is intentionally minimal: it covers mutating operations plus
// the reads persist performs (ReadFile, ReadDir, Stat), and it adds no
// behavior of its own — OS is a zero-cost passthrough to the os package.
package fault

import (
	"io"
	"io/fs"
	"os"
)

// File is the open-file surface persist uses: sequential reads and
// writes, fsync, truncate, and metadata. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Stat returns the file's metadata.
	Stat() (fs.FileInfo, error)
	// Sync commits the file's current contents to stable storage.
	Sync() error
	// Truncate changes the file's size without moving the cursor.
	Truncate(size int64) error
}

// FS is the filesystem surface persist uses. Implementations must be safe
// for concurrent use, matching the os package.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new temporary file with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames (replacing) a file within a filesystem.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Stat returns file metadata.
	Stat(name string) (fs.FileInfo, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OS is the production filesystem: every call passes straight through to
// the os package.
var OS FS = osFS{}

// osFS implements FS over the real filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
