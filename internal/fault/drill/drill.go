// Package drill is the crash-schedule drill harness over the fault seam:
// it runs a deterministic WAL-mode query workload once on a tracing
// filesystem to enumerate every durability syscall (the fault points),
// then replays seeded schedules that each inject one fault — transient
// error, torn write, or a crash latched at an arbitrary syscall — abandon
// the "dead" manager, recover from disk through a clean filesystem, and
// check the persistence invariants the privacy proof rests on:
//
//   - recovery always succeeds (ledger re-verification and WAL replay
//     included — service.New performs both),
//   - a session whose creation was acknowledged is restored,
//   - every ⊤ answer released to the analyst is on disk: the restored
//     transcript holds its event, bit-identical (write-ahead rule — the
//     spend an answer was paid for can never be lost),
//   - any restored event whose answer was released matches it bit for
//     bit: a ⊥-only tail may be lost to the crash, but nothing is ever
//     silently wrong,
//   - the restored session keeps serving (or refuses cleanly with a
//     budget error).
//
// Schedules are pure functions of (seed, schedule index), so a CI failure
// reproduces locally from the seed alone.
package drill

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/persist"
	"repro/internal/sample"
	"repro/internal/service"
	"repro/internal/universe"
)

// Options shapes the drill workload. Zero values select defaults sized so
// one schedule runs in well under a second.
type Options struct {
	// DataSeed and SrcSeed seed the fixture dataset and the manager's
	// session noise source (defaults 1 and 9).
	DataSeed, SrcSeed int64
	// Queries is the length of the per-schedule query script (default 12).
	Queries int
	// CompactEvery folds the session WAL after this many records
	// (default 4 — small, so schedules exercise compaction too).
	CompactEvery int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.DataSeed == 0 {
		o.DataSeed = 1
	}
	if o.SrcSeed == 0 {
		o.SrcSeed = 9
	}
	if o.Queries == 0 {
		o.Queries = 12
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 4
	}
	return o
}

// released is one answer the analyst actually received before the
// schedule's crash: the client-visible bits the restored state must never
// contradict.
type released struct {
	index  int // 1-based transcript index (QueriesUsed after the query)
	top    bool
	answer []float64
}

// ScheduleResult reports one seeded schedule.
type ScheduleResult struct {
	// Seed derives the schedule; Fault is the injection it selected.
	Seed  int64
	Fault fault.Fault
	// Fired counts injections that actually hit (0 = the op index was past
	// the run's end, so the schedule degenerated to crash-at-end).
	Fired int
	// Crashed reports the schedule latched the filesystem dead.
	Crashed bool
	// Released and TopsReleased count answers (and ⊤ answers) the analyst
	// received before the crash.
	Released     int
	TopsReleased int
	// Failure is the first invariant violation, empty when all held.
	Failure string
}

// Report is one drill run: the clean-run fault-point enumeration plus
// every schedule's outcome.
type Report struct {
	// Window is the op count of the clean run's query phase — the index
	// range schedules draw fault points from.
	Window int
	// WritePoints counts distinct write-path fault points (write, sync,
	// create, open, rename, truncate ops) in the window.
	WritePoints int
	// Results holds one entry per schedule, in seed order.
	Results []ScheduleResult
	// Failures counts schedules whose Failure is non-empty.
	Failures int
}

// drillSpec returns the i-th query of the script: every spec is distinct
// (no cache hits), alternating loss families so the stream mixes ⊥ and ⊤
// dispositions the way a real analyst would.
func drillSpec(i int) convex.Spec {
	if i%2 == 0 {
		return convex.Spec{
			Kind:   "halfspace",
			Params: json.RawMessage(fmt.Sprintf(`{"w":[1,0,0],"threshold":%g}`, 0.001*float64(i+1))),
		}
	}
	return convex.Spec{
		Kind:   "logistic",
		Params: json.RawMessage(fmt.Sprintf(`{"temp":%g}`, 0.4+0.01*float64(i))),
	}
}

// buildData rebuilds the fixture dataset from its seed — the same dataset
// for the crashed run and the recovery, as a restarted server would have.
func buildData(seed int64) (*dataset.Dataset, error) {
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		return nil, err
	}
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		return nil, err
	}
	return dataset.SampleFrom(sample.New(seed), pop, 20000), nil
}

// manager builds a WAL-mode manager over the store.
func (o Options) manager(data *dataset.Dataset, st *persist.Store) (*service.Manager, error) {
	return service.New(service.Config{
		Data:   data,
		Source: sample.New(o.SrcSeed),
		Defaults: service.SessionParams{
			Eps: 1, Delta: 1e-6, Alpha: 0.1,
			K: 2*o.Queries + 4, TBudget: o.Queries,
		},
		Store:        st,
		WAL:          true,
		CompactEvery: o.CompactEvery,
	})
}

// runScript drives the workload over an injecting store: create a session,
// issue the script, and record what the analyst saw. Any step may die on
// an injected fault; the function returns what was released before that.
// The manager is abandoned, never shut down — the schedule's premise is
// that the process crashed.
func (o Options) runScript(data *dataset.Dataset, dir string, plan *fault.Plan) (id string, rel []released) {
	st, err := persist.OpenFS(dir, fault.Wrap(fault.OS, plan))
	if err != nil {
		return "", nil
	}
	mgr, err := o.manager(data, st)
	if err != nil {
		return "", nil
	}
	sess, err := mgr.CreateSession(service.SessionParams{})
	if err != nil {
		return "", nil
	}
	for i := 0; i < o.Queries; i++ {
		res, err := sess.Query(drillSpec(i))
		if err != nil {
			if plan.Crashed() {
				break // the process is dead; nothing further is served
			}
			continue // transient fault: answer withheld, session lives on
		}
		if res.Cached {
			continue // defensive: the script is cache-miss-only by design
		}
		rel = append(rel, released{
			index:  res.QueriesUsed,
			top:    res.Top,
			answer: append([]float64(nil), res.Answer...),
		})
	}
	return sess.ID(), rel
}

// recoverAndCheck restarts over the schedule's state directory with a
// clean filesystem and checks every invariant against what was released.
func (o Options) recoverAndCheck(data *dataset.Dataset, dir, id string, rel []released) error {
	st, err := persist.Open(dir)
	if err != nil {
		return fmt.Errorf("reopening store: %w", err)
	}
	mgr, err := o.manager(data, st)
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	defer mgr.Shutdown()
	if id == "" {
		// The crash predates an acknowledged session; recovery just has to
		// come up (checked above), with whatever partial state was on disk.
		return nil
	}
	sess, err := mgr.Session(id)
	if err != nil {
		return fmt.Errorf("acknowledged session %s not restored: %w", id, err)
	}
	raw, err := sess.TranscriptJSON()
	if err != nil {
		return fmt.Errorf("restored transcript unreadable: %w", err)
	}
	var rec service.TranscriptRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("restored transcript undecodable: %w", err)
	}
	events := rec.Transcript.Events
	for _, r := range rel {
		if len(events) < r.index {
			if r.top {
				// The write-ahead rule: a ⊤ answer is only released after its
				// record is durable, so it can never be missing after a crash.
				return fmt.Errorf("released ⊤ answer %d lost: restored transcript has %d events", r.index, len(events))
			}
			continue // a ⊥-only tail may be lost; the analyst lost nothing the ledger paid for
		}
		ev := events[r.index-1]
		if ev.Index != r.index {
			return fmt.Errorf("restored event order broken: event at position %d carries index %d", r.index, ev.Index)
		}
		if ev.Top != r.top {
			return fmt.Errorf("event %d restored with disposition top=%v, released top=%v", r.index, ev.Top, r.top)
		}
		if len(ev.Answer) != len(r.answer) {
			return fmt.Errorf("event %d restored with %d-dim answer, released %d-dim", r.index, len(ev.Answer), len(r.answer))
		}
		for j := range ev.Answer {
			if ev.Answer[j] != r.answer[j] {
				return fmt.Errorf("event %d answer[%d] restored as %x, released %x — silently wrong restore", r.index, j, ev.Answer[j], r.answer[j])
			}
		}
	}
	// The restored session must keep serving — or refuse cleanly on
	// budget, never an internal error.
	if _, err := sess.Query(drillSpec(o.Queries)); err != nil && !errors.Is(err, service.ErrBudgetExhausted) {
		return fmt.Errorf("restored session cannot continue: %w", err)
	}
	return nil
}

// runSchedule executes one seeded schedule end to end in its own state
// directory.
func (o Options) runSchedule(data *dataset.Dataset, seed int64, window int) (ScheduleResult, error) {
	dir, err := os.MkdirTemp("", "pmwcm-drill-")
	if err != nil {
		return ScheduleResult{}, err
	}
	defer os.RemoveAll(dir)
	f := fault.Seeded(seed, window)
	plan := fault.NewPlan(f)
	id, rel := o.runScript(data, dir, plan)
	res := ScheduleResult{
		Seed:     seed,
		Fault:    f,
		Fired:    plan.Fired(),
		Crashed:  plan.Crashed(),
		Released: len(rel),
	}
	for _, r := range rel {
		if r.top {
			res.TopsReleased++
		}
	}
	if err := o.recoverAndCheck(data, dir, id, rel); err != nil {
		res.Failure = err.Error()
	}
	return res, nil
}

// Run executes the drill: enumerate fault points on a clean run, then
// replay schedules seeded seed, seed+1, …, seed+schedules-1. The returned
// error covers harness problems only (temp dirs, fixture construction);
// invariant violations land in the Report.
func Run(opts Options, seed int64, schedules int) (*Report, error) {
	o := opts.withDefaults()
	data, err := buildData(o.DataSeed)
	if err != nil {
		return nil, err
	}

	// Clean run on a tracing plan: its op stream is the fault-point
	// enumeration, and its op count the window schedules draw from.
	dir, err := os.MkdirTemp("", "pmwcm-drill-trace-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	plan := fault.NewPlan()
	plan.Tracing = true
	if id, _ := o.runScript(data, dir, plan); id == "" {
		return nil, fmt.Errorf("drill: clean run failed to start")
	}
	rep := &Report{Window: plan.Ops()}
	for _, op := range plan.Trace() {
		switch op.Kind {
		case fault.OpWrite, fault.OpSync, fault.OpCreate, fault.OpOpen, fault.OpRename, fault.OpTruncate:
			rep.WritePoints++
		}
	}

	for i := 0; i < schedules; i++ {
		res, err := o.runSchedule(data, seed+int64(i), rep.Window)
		if err != nil {
			return nil, err
		}
		if res.Failure != "" {
			rep.Failures++
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
