package fault

// inject.go is the injecting FS: it wraps an inner FS, numbers every
// mutating operation with one global op counter, and consults a Plan at
// each op. A plan can record the op stream (tracing a clean run to
// enumerate its fault points), fail a single numbered op (transient I/O
// error or torn write), or crash: latch the filesystem so the faulted op
// and everything after it fails, simulating the process dying at exactly
// that syscall. Crashes latch rather than panic deliberately — WAL fsyncs
// run on the group committer's goroutine, where a panic would kill the
// test process instead of simulating the server's death; a latched FS
// lets the drill abandon the "dead" manager and recover from disk, which
// is what a real restart does.

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Injection sentinels, detectable through errors.Is on anything a faulted
// operation returns.
var (
	// ErrInjected marks every error produced by a fault plan (transient
	// errors wrap it together with syscall.ENOSPC).
	ErrInjected = errors.New("fault: injected I/O error")
	// ErrCrashed marks operations refused because the plan's crash point
	// has fired: the simulated process is dead and no later write lands.
	ErrCrashed = errors.New("fault: filesystem crashed")
)

// Op kinds, in the Kind fields of Op and Fault. Reads (Stat, ReadFile,
// ReadDir) are not numbered: drills target the write path, and recovery
// runs on a clean FS anyway.
const (
	OpMkdir    = "mkdir"
	OpCreate   = "create" // CreateTemp
	OpOpen     = "open"   // OpenFile
	OpWrite    = "write"
	OpSync     = "sync"
	OpRename   = "rename"
	OpRemove   = "remove"
	OpTruncate = "truncate"
)

// Op is one numbered mutating operation observed by a tracing plan — a
// fault point a schedule can target.
type Op struct {
	// N is the global op index (0-based, in execution order).
	N int
	// Kind is one of the Op* constants.
	Kind string
	// Path is the base name of the file operated on.
	Path string
}

// Fault modes.
const (
	// ModeErr fails the op with a transient error (wrapping ENOSPC);
	// nothing of the op takes effect and later ops proceed normally.
	ModeErr = "error"
	// ModeTorn applies to writes: only the first Bytes bytes land, then
	// the op fails as ModeErr. On non-write ops it degrades to ModeErr.
	ModeTorn = "torn"
	// ModeCrash simulates the process dying at the op: for writes the
	// first Bytes bytes land, then the op and every later mutating op
	// fail with ErrCrashed.
	ModeCrash = "crash"
)

// Fault is one planned injection.
type Fault struct {
	// Op is the exact op index the fault fires at; -1 makes the fault
	// sticky: it fires on every op of the matching Kind numbered >= After.
	Op int
	// Kind optionally restricts a sticky (Op == -1) fault to one op kind;
	// empty matches every kind.
	Kind string
	// After is the first op index a sticky fault may fire at.
	After int
	// Mode is ModeErr, ModeTorn, or ModeCrash.
	Mode string
	// Bytes is the torn-write prefix that still lands (ModeTorn,
	// ModeCrash on write ops).
	Bytes int
}

// String renders the fault in the -fault-plan syntax.
func (f Fault) String() string {
	if f.Op < 0 {
		k := f.Kind
		if k == "" {
			k = "any"
		}
		return fmt.Sprintf("%s@%s+%d", f.Mode, k, f.After)
	}
	if f.Mode == ModeTorn || (f.Mode == ModeCrash && f.Bytes > 0) {
		return fmt.Sprintf("%s@%d:%d", f.Mode, f.Op, f.Bytes)
	}
	return fmt.Sprintf("%s@%d", f.Mode, f.Op)
}

// Plan is the deterministic schedule an injecting FS consults: which ops
// to fail and how, plus the op trace when tracing. Safe for concurrent
// use; the op numbering is a single global sequence, so a run that issues
// the same operations in the same order sees the same indices.
type Plan struct {
	// Tracing records every numbered op so a clean run enumerates its
	// fault points. Set before use; not synchronized.
	Tracing bool

	faults []Fault

	mu      sync.Mutex
	n       int
	trace   []Op
	fired   int
	crashed bool
}

// NewPlan returns a plan injecting the given faults (none = passthrough,
// useful with Tracing to enumerate fault points).
func NewPlan(faults ...Fault) *Plan {
	return &Plan{faults: faults}
}

// Ops returns how many mutating operations have been numbered so far.
func (p *Plan) Ops() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Trace returns a copy of the recorded op stream (empty unless Tracing).
func (p *Plan) Trace() []Op {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Op(nil), p.trace...)
}

// Fired returns how many faults have been injected.
func (p *Plan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Crashed reports whether the crash point has fired: the simulated
// process is dead and every mutating op fails until recovery reopens the
// directory through a clean FS.
func (p *Plan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// step numbers one mutating op and decides its fate: fault == nil means
// proceed. Called once per op by the injecting FS.
func (p *Plan) step(kind, path string) (n int, fault *Fault, crashed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n = p.n
	p.n++
	if p.Tracing {
		p.trace = append(p.trace, Op{N: n, Kind: kind, Path: filepath.Base(path)})
	}
	if p.crashed {
		return n, nil, true
	}
	for i := range p.faults {
		f := &p.faults[i]
		hit := f.Op == n || (f.Op < 0 && n >= f.After && (f.Kind == "" || f.Kind == kind))
		if !hit {
			continue
		}
		p.fired++
		if f.Mode == ModeCrash {
			p.crashed = true
		}
		fc := *f
		return n, &fc, false
	}
	return n, nil, false
}

// errInjected builds the transient-fault error for op n.
func errInjected(n int, kind, path string) error {
	return fmt.Errorf("fault: op %d (%s %s): %w: %w", n, kind, filepath.Base(path), ErrInjected, syscall.ENOSPC)
}

// errCrashed builds the post-crash refusal for op n.
func errCrashed(n int, kind, path string) error {
	return fmt.Errorf("fault: op %d (%s %s): %w", n, kind, filepath.Base(path), ErrCrashed)
}

// Wrap returns an FS that forwards to inner while numbering mutating ops
// and injecting plan's faults.
func Wrap(inner FS, plan *Plan) FS {
	return &injectFS{inner: inner, plan: plan}
}

// injectFS is the injecting FS implementation.
type injectFS struct {
	inner FS
	plan  *Plan
}

// gate numbers one op and returns the error to inject, or nil to proceed.
// Torn handling needs the fault itself, so write paths use step directly.
func (i *injectFS) gate(kind, path string) error {
	n, f, crashed := i.plan.step(kind, path)
	if crashed {
		return errCrashed(n, kind, path)
	}
	if f == nil {
		return nil
	}
	if f.Mode == ModeCrash {
		return errCrashed(n, kind, path)
	}
	return errInjected(n, kind, path)
}

func (i *injectFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := i.gate(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: f, fs: i}, nil
}

func (i *injectFS) CreateTemp(dir, pattern string) (File, error) {
	if err := i.gate(OpCreate, pattern); err != nil {
		return nil, err
	}
	f, err := i.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: f, fs: i}, nil
}

func (i *injectFS) Rename(oldpath, newpath string) error {
	if err := i.gate(OpRename, newpath); err != nil {
		return err
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *injectFS) Remove(name string) error {
	if err := i.gate(OpRemove, name); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

func (i *injectFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := i.gate(OpMkdir, path); err != nil {
		return err
	}
	return i.inner.MkdirAll(path, perm)
}

// Reads pass through un-numbered: the write path is the drill target, and
// recovery reads through a clean FS.
func (i *injectFS) Stat(name string) (fs.FileInfo, error)      { return i.inner.Stat(name) }
func (i *injectFS) ReadFile(name string) ([]byte, error)       { return i.inner.ReadFile(name) }
func (i *injectFS) ReadDir(name string) ([]fs.DirEntry, error) { return i.inner.ReadDir(name) }

// injectFile wraps an open file, numbering its writes, syncs, and
// truncates through the owning plan.
type injectFile struct {
	inner File
	fs    *injectFS
}

func (f *injectFile) Write(p []byte) (int, error) {
	n, flt, crashed := f.fs.plan.step(OpWrite, f.inner.Name())
	if crashed {
		return 0, errCrashed(n, OpWrite, f.inner.Name())
	}
	if flt == nil {
		return f.inner.Write(p)
	}
	// Torn write: land a prefix before failing, the way a crash mid-write
	// leaves a partial page on disk.
	k := flt.Bytes
	if k > len(p) {
		k = len(p)
	}
	wrote := 0
	if (flt.Mode == ModeTorn || flt.Mode == ModeCrash) && k > 0 {
		wrote, _ = f.inner.Write(p[:k])
	}
	if flt.Mode == ModeCrash {
		return wrote, errCrashed(n, OpWrite, f.inner.Name())
	}
	return wrote, errInjected(n, OpWrite, f.inner.Name())
}

func (f *injectFile) Sync() error {
	if err := f.fs.gate(OpSync, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *injectFile) Truncate(size int64) error {
	if err := f.fs.gate(OpTruncate, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

// Close, reads, and seeks pass through: closing releases the descriptor
// even on a "dead" filesystem, and the drill's recovery reads never go
// through the injecting FS.
func (f *injectFile) Read(p []byte) (int, error)         { return f.inner.Read(p) }
func (f *injectFile) Seek(o int64, w int) (int64, error) { return f.inner.Seek(o, w) }
func (f *injectFile) Close() error                       { return f.inner.Close() }
func (f *injectFile) Name() string                       { return f.inner.Name() }
func (f *injectFile) Stat() (fs.FileInfo, error)         { return f.inner.Stat() }

// Seeded derives one deterministic fault from a seed: an op index uniform
// over [0, window), a mode, and a torn-prefix length. Equal seeds and
// windows give equal faults, which is what makes a drill schedule
// replayable from its seed alone.
func Seeded(seed int64, window int) Fault {
	if window < 1 {
		window = 1
	}
	rng := rand.New(rand.NewSource(seed))
	modes := []string{ModeErr, ModeTorn, ModeCrash}
	return Fault{
		Op:    rng.Intn(window),
		Mode:  modes[rng.Intn(len(modes))],
		Bytes: rng.Intn(24),
	}
}

// SeededPlan derives a plan of count distinct-op faults over [0, window),
// restricted to the given modes (nil = all three). Used by the serve
// -fault-plan "seed=…" form.
func SeededPlan(seed int64, window, count int, modes []string) *Plan {
	if len(modes) == 0 {
		modes = []string{ModeErr, ModeTorn, ModeCrash}
	}
	if window < 1 {
		window = 1
	}
	if count > window {
		count = window
	}
	rng := rand.New(rand.NewSource(seed))
	ops := map[int]bool{}
	faults := make([]Fault, 0, count)
	for len(faults) < count {
		op := rng.Intn(window)
		if ops[op] {
			continue
		}
		ops[op] = true
		faults = append(faults, Fault{
			Op:    op,
			Mode:  modes[rng.Intn(len(modes))],
			Bytes: rng.Intn(24),
		})
	}
	sort.Slice(faults, func(a, b int) bool { return faults[a].Op < faults[b].Op })
	return NewPlan(faults...)
}

// ParsePlan parses the -fault-plan flag syntax. Two forms:
//
//	seed=7,window=400,faults=3[,modes=error+torn]
//
// derives a SeededPlan, and a comma-separated explicit list
//
//	error@12,torn@40:3,crash@77,error@sync+100
//
// where mode@N fails op N, mode@N:K lands a K-byte torn prefix first, and
// mode@kind+N is sticky: every op of that kind from index N on.
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("fault: empty plan")
	}
	if strings.Contains(spec, "seed=") {
		return parseSeededPlan(spec)
	}
	var faults []Fault
	for _, item := range strings.Split(spec, ",") {
		f, err := parseFault(strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		faults = append(faults, f)
	}
	return NewPlan(faults...), nil
}

// parseSeededPlan parses the seed=…,window=…,faults=… form.
func parseSeededPlan(spec string) (*Plan, error) {
	var seed int64
	window, count := 1000, 1
	var modes []string
	for _, item := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return nil, fmt.Errorf("fault: plan item %q: want key=value", item)
		}
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: plan seed %q: %w", val, err)
			}
			seed = v
		case "window":
			v, err := strconv.Atoi(val)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("fault: plan window %q: want positive integer", val)
			}
			window = v
		case "faults":
			v, err := strconv.Atoi(val)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("fault: plan faults %q: want positive integer", val)
			}
			count = v
		case "modes":
			for _, m := range strings.Split(val, "+") {
				if m != ModeErr && m != ModeTorn && m != ModeCrash {
					return nil, fmt.Errorf("fault: plan mode %q (have error, torn, crash)", m)
				}
				modes = append(modes, m)
			}
		default:
			return nil, fmt.Errorf("fault: unknown plan key %q", key)
		}
	}
	return SeededPlan(seed, window, count, modes), nil
}

// parseFault parses one explicit mode@target item.
func parseFault(item string) (Fault, error) {
	mode, target, ok := strings.Cut(item, "@")
	if !ok {
		return Fault{}, fmt.Errorf("fault: plan item %q: want mode@op", item)
	}
	if mode != ModeErr && mode != ModeTorn && mode != ModeCrash {
		return Fault{}, fmt.Errorf("fault: plan mode %q (have error, torn, crash)", mode)
	}
	f := Fault{Mode: mode}
	if kind, after, sticky := strings.Cut(target, "+"); sticky {
		switch kind {
		case OpMkdir, OpCreate, OpOpen, OpWrite, OpSync, OpRename, OpRemove, OpTruncate, "any":
		default:
			return Fault{}, fmt.Errorf("fault: plan op kind %q", kind)
		}
		f.Op = -1
		if kind != "any" {
			f.Kind = kind
		}
		v, err := strconv.Atoi(after)
		if err != nil || v < 0 {
			return Fault{}, fmt.Errorf("fault: plan item %q: bad sticky start", item)
		}
		f.After = v
		return f, nil
	}
	opStr, bytesStr, hasBytes := strings.Cut(target, ":")
	op, err := strconv.Atoi(opStr)
	if err != nil || op < 0 {
		return Fault{}, fmt.Errorf("fault: plan item %q: bad op index", item)
	}
	f.Op = op
	if hasBytes {
		b, err := strconv.Atoi(bytesStr)
		if err != nil || b < 0 {
			return Fault{}, fmt.Errorf("fault: plan item %q: bad torn byte count", item)
		}
		f.Bytes = b
	}
	return f, nil
}
