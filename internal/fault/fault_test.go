package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeThrough opens path through fsys, writes data, syncs, and closes,
// returning the first error.
func writeThrough(fsys FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestTracingEnumeratesOps(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan()
	plan.Tracing = true
	fsys := Wrap(OS, plan)

	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeThrough(fsys, filepath.Join(dir, "a"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}

	want := []string{OpMkdir, OpOpen, OpWrite, OpSync, OpRename, OpRemove}
	trace := plan.Trace()
	if len(trace) != len(want) {
		t.Fatalf("trace has %d ops, want %d: %+v", len(trace), len(want), trace)
	}
	for i, op := range trace {
		if op.Kind != want[i] || op.N != i {
			t.Fatalf("trace[%d] = %+v, want kind %s at n=%d", i, op, want[i], i)
		}
	}
	if plan.Ops() != len(want) {
		t.Fatalf("Ops() = %d, want %d", plan.Ops(), len(want))
	}
}

func TestErrorInjectionIsTransient(t *testing.T) {
	dir := t.TempDir()
	// Op 0 = open, op 1 = write: fail the first write only.
	plan := NewPlan(Fault{Op: 1, Mode: ModeErr})
	fsys := Wrap(OS, plan)

	path := filepath.Join(dir, "f")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("faulted write succeeded")
	} else if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("fault error = %v, want ErrInjected wrapping ENOSPC", err)
	}
	// The fault was one-shot: the retry lands and nothing from the faulted
	// attempt is on disk.
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("post-fault sync: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ok" {
		t.Fatalf("file contents %q, want %q", data, "ok")
	}
	if plan.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", plan.Fired())
	}
}

func TestTornWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(Fault{Op: 1, Mode: ModeTorn, Bytes: 3})
	fsys := Wrap(OS, plan)

	path := filepath.Join(dir, "f")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("abcdef"))
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if n != 3 {
		t.Fatalf("torn write landed %d bytes, want 3", n)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abc" {
		t.Fatalf("file contents %q, want torn prefix %q", data, "abc")
	}
}

func TestCrashLatchesEveryLaterOp(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(Fault{Op: 2, Mode: ModeCrash})
	fsys := Wrap(OS, plan)

	path := filepath.Join(dir, "f")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644) // op 0
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("pre")); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // op 2: crash
		t.Fatalf("crash-point sync error = %v, want ErrCrashed", err)
	}
	if !plan.Crashed() {
		t.Fatal("plan not latched crashed")
	}
	// Every later mutating op is refused; nothing more lands on disk.
	if _, err := f.Write([]byte("post")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write error = %v, want ErrCrashed", err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename error = %v, want ErrCrashed", err)
	}
	if _, err := fsys.OpenFile(filepath.Join(dir, "h"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open error = %v, want ErrCrashed", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "pre" {
		t.Fatalf("file contents %q, want only pre-crash bytes %q", data, "pre")
	}
}

func TestStickyKindFault(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(Fault{Op: -1, Kind: OpSync, Mode: ModeErr})
	fsys := Wrap(OS, plan)

	f, err := fsys.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write should pass a sync-only sticky fault: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d error = %v, want ErrInjected", i, err)
		}
	}
}

func TestSeededIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Seeded(seed, 300), Seeded(seed, 300)
		if a != b {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
		if a.Op < 0 || a.Op >= 300 {
			t.Fatalf("seed %d: op %d outside window", seed, a.Op)
		}
		switch a.Mode {
		case ModeErr, ModeTorn, ModeCrash:
		default:
			t.Fatalf("seed %d: bad mode %q", seed, a.Mode)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("error@12,torn@40:3,crash@77,error@sync+100")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Op: 12, Mode: ModeErr},
		{Op: 40, Mode: ModeTorn, Bytes: 3},
		{Op: 77, Mode: ModeCrash},
		{Op: -1, Kind: OpSync, After: 100, Mode: ModeErr},
	}
	if len(p.faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(p.faults), len(want))
	}
	for i, f := range p.faults {
		if f != want[i] {
			t.Fatalf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}

	p, err = ParsePlan("seed=7,window=400,faults=3,modes=error+torn")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.faults) != 3 {
		t.Fatalf("seeded plan has %d faults, want 3", len(p.faults))
	}
	for _, f := range p.faults {
		if f.Mode == ModeCrash {
			t.Fatalf("mode-restricted plan produced a crash fault: %+v", f)
		}
		if f.Op < 0 || f.Op >= 400 {
			t.Fatalf("fault op %d outside window", f.Op)
		}
	}

	for _, bad := range []string{"", "nope", "explode@3", "error@-1", "torn@5:x", "seed=x", "seed=1,modes=boom", "error@frobnicate+2"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted", bad)
		}
	}
}
