package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/persist"
	"repro/internal/sample"
	"repro/internal/universe"
)

// durableData rebuilds the identical private dataset from a fixed seed —
// what an operator restarting `pmwcm serve` with the same flags does.
func durableData(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.SampleFrom(sample.New(seed), pop, 50000)
}

// durableManager builds a manager over the fixture dataset, optionally
// durable. srcSeed seeds the manager's session-source; restored sessions
// must not depend on it (their noise streams come from the state files).
func durableManager(t *testing.T, dir string, dataSeed, srcSeed int64, defaults SessionParams) *Manager {
	t.Helper()
	cfg := Config{
		Data:     durableData(t, dataSeed),
		Source:   sample.New(srcSeed),
		Defaults: defaults,
	}
	if dir != "" {
		st, err := persist.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mixedSpecs is a query stream that produces both ⊥ and ⊤ answers.
func mixedSpecs(n int) []convex.Spec {
	specs := make([]convex.Spec, 0, n)
	for i := 0; specs == nil || len(specs) < n; i++ {
		switch i % 3 {
		case 0:
			specs = append(specs, countingSpec(i%2))
		case 1:
			specs = append(specs, convex.Spec{Kind: "squared"})
		default:
			specs = append(specs, convex.Spec{Kind: "logistic", Params: json.RawMessage(`{"temp":0.5}`)})
		}
	}
	return specs
}

// sameResult compares two query results bit-for-bit.
func sameResult(t *testing.T, stage string, a, b *QueryResult) {
	t.Helper()
	if a.Loss != b.Loss || a.Top != b.Top ||
		a.EpsSpent != b.EpsSpent || a.DeltaSpent != b.DeltaSpent || a.RhoSpent != b.RhoSpent ||
		a.EpsRemaining != b.EpsRemaining || a.DeltaRemaining != b.DeltaRemaining ||
		a.QueriesUsed != b.QueriesUsed || a.UpdatesUsed != b.UpdatesUsed {
		t.Fatalf("%s: results differ:\n%+v\n%+v", stage, a, b)
	}
	if len(a.Answer) != len(b.Answer) {
		t.Fatalf("%s: answer lengths %d vs %d", stage, len(a.Answer), len(b.Answer))
	}
	for j := range a.Answer {
		if a.Answer[j] != b.Answer[j] {
			t.Fatalf("%s: answer[%d] = %x, want %x", stage, j, b.Answer[j], a.Answer[j])
		}
	}
}

// TestDurableGoldenContinuation is the acceptance invariant at the service
// layer, per accountant: a session checkpointed mid-stream and recovered
// by a fresh manager (fresh process, same dataset and state directory)
// answers the remaining query sequence bit-identically — answers, ⊥/⊤
// pattern, budget spend, transcript — to an uninterrupted session.
func TestDurableGoldenContinuation(t *testing.T) {
	for _, acct := range []string{"basic", "advanced", "zcdp"} {
		t.Run(acct, func(t *testing.T) {
			defaults := SessionParams{
				Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 12, TBudget: 6,
				Accountant: acct,
			}
			specs := mixedSpecs(12)
			const cut = 5

			// Reference: one uninterrupted in-memory run.
			ref := durableManager(t, "", 1, 9, defaults)
			defer ref.Shutdown()
			refSess, err := ref.CreateSession(SessionParams{})
			if err != nil {
				t.Fatal(err)
			}
			refResults := make([]*QueryResult, len(specs))
			for i, q := range specs {
				if refResults[i], err = refSess.Query(q); err != nil {
					t.Fatalf("reference query %d: %v", i, err)
				}
			}

			// Durable: same dataset and session-source seed, interrupted at
			// cut by a graceful shutdown.
			dir := t.TempDir()
			m1 := durableManager(t, dir, 1, 9, defaults)
			s1, err := m1.CreateSession(SessionParams{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < cut; i++ {
				res, err := s1.Query(specs[i])
				if err != nil {
					t.Fatalf("pre-restart query %d: %v", i, err)
				}
				sameResult(t, "pre-restart", refResults[i], res)
			}
			m1.Shutdown()

			// Restart: a different session-source seed on purpose — the
			// restored stream position must come from the state file alone.
			m2 := durableManager(t, dir, 1, 777, defaults)
			defer m2.Shutdown()
			s2, err := m2.Session(s1.ID())
			if err != nil {
				t.Fatalf("restored session not found: %v", err)
			}
			// Cached repeats never reach the mechanism, so the restored query
			// counter equals the number of non-cached answers before the cut.
			wantUsed := 0
			for i := 0; i < cut; i++ {
				if !refResults[i].Cached {
					wantUsed++
				}
			}
			if got, want := s2.Status(), refSess.Status(); got.QueriesUsed != wantUsed ||
				got.UpdatesUsed > want.UpdatesUsed || got.Accountant != acct {
				t.Fatalf("restored status %+v, want %d queries used", got, wantUsed)
			}
			for i := cut; i < len(specs); i++ {
				res, err := s2.Query(specs[i])
				if err != nil {
					t.Fatalf("post-restart query %d: %v", i, err)
				}
				sameResult(t, "post-restart", refResults[i], res)
			}

			// The audit transcripts of the stitched and uninterrupted runs
			// must be byte-identical (modulo the session ids, which match
			// here because both managers issued s-000001).
			refTr, err := refSess.TranscriptJSON()
			if err != nil {
				t.Fatal(err)
			}
			gotTr, err := s2.TranscriptJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(refTr) != string(gotTr) {
				t.Fatalf("transcripts differ:\n%s\n%s", refTr, gotTr)
			}
		})
	}
}

// TestDurableCrashRecovery drops the manager without Shutdown — a crash —
// and checks recovery resumes from the last ⊤-answer checkpoint with no
// recorded spend lost.
func TestDurableCrashRecovery(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 10, TBudget: 6}
	dir := t.TempDir()
	m1 := durableManager(t, dir, 1, 9, defaults)
	s1, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	var tops, lastTopQuery int
	for i, q := range mixedSpecs(8) {
		res, err := s1.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Top {
			tops++
			lastTopQuery = i + 1
		}
	}
	if tops == 0 {
		t.Fatal("fixture produced no ⊤ answers; crash test is vacuous")
	}
	// No Shutdown: m1 is simply abandoned, as in a crash.

	m2 := durableManager(t, dir, 1, 777, defaults)
	defer m2.Shutdown()
	s2, err := m2.Session(s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Status()
	if st.UpdatesUsed != tops {
		t.Fatalf("recovered %d updates, want all %d recorded spends", st.UpdatesUsed, tops)
	}
	// ⊥-only tail past the last ⊤ may be lost, but nothing before it.
	if st.QueriesUsed < lastTopQuery {
		t.Fatalf("recovered %d queries, want ≥ %d (last ⊤ checkpoint)", st.QueriesUsed, lastTopQuery)
	}
	if _, err := s2.Query(countingSpec(0)); err != nil {
		t.Fatalf("recovered session cannot continue: %v", err)
	}
}

// TestRestartDoesNotReuseNoiseStreams pins the root-source fix: the
// manifest records the manager's root noise-stream position, so a session
// created *after* a restart must not receive the noise stream a
// pre-restart session already drew from. Without the fix, the restarted
// manager's source rewinds to its seed and the post-restart session's ⊤
// answers reproduce the pre-restart session's bit-for-bit — correlated
// noise across sessions that no ledger accounts for.
func TestRestartDoesNotReuseNoiseStreams(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.02, K: 6, TBudget: 6}
	stream := mixedSpecs(4)
	run := func(s *Session) []*QueryResult {
		t.Helper()
		out := make([]*QueryResult, len(stream))
		for i, q := range stream {
			res, err := s.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
		}
		return out
	}
	tops := func(rs []*QueryResult) []*QueryResult {
		var out []*QueryResult
		for _, r := range rs {
			if r.Top {
				out = append(out, r)
			}
		}
		return out
	}

	dir := t.TempDir()
	m1 := durableManager(t, dir, 1, 9, defaults)
	sA, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	resA := run(sA)
	m1.Shutdown()

	// Same flags as an operator restart: identical dataset and seed.
	m2 := durableManager(t, dir, 1, 9, defaults)
	defer m2.Shutdown()
	sB, err := m2.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	resB := run(sB)

	ta, tb := tops(resA), tops(resB)
	if len(ta) == 0 || len(tb) == 0 {
		t.Fatal("fixture produced no ⊤ answers; noise-reuse test is vacuous")
	}
	for i := 0; i < len(ta) && i < len(tb); i++ {
		same := len(ta[i].Answer) == len(tb[i].Answer)
		if same {
			for j := range ta[i].Answer {
				same = same && ta[i].Answer[j] == tb[i].Answer[j]
			}
		}
		if same {
			t.Fatalf("⊤ answer %d identical across pre- and post-restart sessions: noise stream reused (%v)", i, ta[i].Answer)
		}
	}
}

// TestDurableClosedSessionSurvives checks an analyst-closed session stays
// permanently closed across restarts while remaining auditable.
func TestDurableClosedSessionSurvives(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 5, TBudget: 6}
	dir := t.TempDir()
	m1 := durableManager(t, dir, 1, 9, defaults)
	s1, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Query(countingSpec(0)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	m1.Shutdown()

	m2 := durableManager(t, dir, 1, 777, defaults)
	defer m2.Shutdown()
	s2, err := m2.Session(s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Status().Closed {
		t.Fatal("restored session should be closed")
	}
	if _, err := s2.Query(countingSpec(0)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("query on restored closed session: %v", err)
	}
	if _, err := s2.TranscriptJSON(); err != nil {
		t.Fatalf("transcript read on restored closed session: %v", err)
	}
	if m2.OpenSessions() != 0 {
		t.Fatalf("closed session counted open: %d", m2.OpenSessions())
	}
	// A new session must not reuse the closed session's id.
	s3, err := m2.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if s3.ID() == s1.ID() {
		t.Fatalf("session id %s reused", s3.ID())
	}
}

// TestRecoverRejectsDrift checks the manifest and state files pin the
// serving configuration: a different dataset or oracle refuses to start.
func TestRecoverRejectsDrift(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 5, TBudget: 6}
	dir := t.TempDir()
	m1 := durableManager(t, dir, 1, 9, defaults)
	if _, err := m1.CreateSession(SessionParams{}); err != nil {
		t.Fatal(err)
	}
	m1.Shutdown()

	// Different dataset seed → different rows → fingerprint mismatch.
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{
		Data:     durableData(t, 2),
		Source:   sample.New(9),
		Defaults: defaults,
		Store:    st,
	}); err == nil || !strings.Contains(err.Error(), "different dataset") {
		t.Fatalf("dataset drift: %v", err)
	}

	// Different oracle → refused per session.
	oracle, err := OracleByName("laplace-linear", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{
		Data:     durableData(t, 1),
		Source:   sample.New(9),
		Defaults: defaults,
		Oracle:   oracle,
		Store:    st,
	}); err == nil || !strings.Contains(err.Error(), "oracle") {
		t.Fatalf("oracle drift: %v", err)
	}
}

// TestRecoverRejectsTamperedLedger corrupts the persisted transcript so it
// disagrees with the accountant ledger and checks recovery refuses the
// session rather than serving on top of an unverifiable spend history.
func TestRecoverRejectsTamperedLedger(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 10, TBudget: 6}
	dir := t.TempDir()
	m1 := durableManager(t, dir, 1, 9, defaults)
	s1, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	var sawTop bool
	for _, q := range mixedSpecs(8) {
		res, err := s1.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		sawTop = sawTop || res.Top
	}
	if !sawTop {
		t.Fatal("fixture produced no ⊤ answers; tamper test is vacuous")
	}
	m1.Shutdown()

	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.LoadSession(s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec.Transcript.Events {
		if rec.Transcript.Events[i].Top {
			// Erase one recorded spend: the transcript now claims less was
			// released than the ledger (and the MW state) say.
			rec.Transcript.Events[i].Top = false
			break
		}
	}
	if err := st.SaveSession(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{
		Data:     durableData(t, 1),
		Source:   sample.New(9),
		Defaults: defaults,
		Store:    st,
	}); err == nil || !strings.Contains(err.Error(), "⊤") {
		t.Fatalf("tampered ledger accepted: %v", err)
	}
}

// TestSnapshotEndpoint checks the HTTP surface: 200 + {"saved":true} on a
// durable server, 501 on a memory-only one, 404 for unknown sessions.
func TestSnapshotEndpoint(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 5, TBudget: 6}
	dir := t.TempDir()
	m := durableManager(t, dir, 1, 9, defaults)
	defer m.Shutdown()
	h := NewHandler(m)
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/sessions/"+s.ID()+"/snapshot", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"saved": true`) {
		t.Fatalf("snapshot on durable server: %d %s", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/sessions/nope/snapshot", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("snapshot of unknown session: %d", rr.Code)
	}

	mem := durableManager(t, "", 1, 9, defaults)
	defer mem.Shutdown()
	hm := NewHandler(mem)
	sm, err := mem.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	hm.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/sessions/"+sm.ID()+"/snapshot", nil))
	if rr.Code != http.StatusNotImplemented {
		t.Fatalf("snapshot on memory-only server: %d %s", rr.Code, rr.Body.String())
	}

	// healthz reports durability.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if !strings.Contains(rr.Body.String(), `"durable": true`) {
		t.Fatalf("healthz on durable server: %s", rr.Body.String())
	}
}

// TestStaleForcedSaveDoesNotClobber pins the save-sequencing rule: a
// forced save carrying state older than what is already on disk (a
// snapshot request that lost the race against a concurrent query's
// write-ahead checkpoint) must be skipped, never written — overwriting
// the newer file would drop a durable spend whose answer was already
// released.
func TestStaleForcedSaveDoesNotClobber(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 10, TBudget: 6}
	m := durableManager(t, t.TempDir(), 1, 9, defaults)
	defer m.Shutdown()
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(countingSpec(0)); err != nil {
		t.Fatal(err)
	}
	// Assemble a stale state now (what a racing Checkpoint would hold)...
	s.mu.Lock()
	stale, err := s.stateLocked()
	staleSeq := len(s.rec.T.Events)
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// ...then let the session move on and checkpoint the newer state.
	if _, err := s.Query(countingSpec(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	newest := len(loadState(t, m, s.ID()).Transcript.Events)
	if newest <= staleSeq {
		t.Fatalf("fixture did not advance the transcript (%d <= %d)", newest, staleSeq)
	}
	// The stale forced save must be a no-op.
	if err := s.save(stale, staleSeq, true); err != nil {
		t.Fatal(err)
	}
	if got := len(loadState(t, m, s.ID()).Transcript.Events); got != newest {
		t.Fatalf("stale forced save rewound the state file to %d events, want %d", got, newest)
	}
}
