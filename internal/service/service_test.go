package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/universe"
)

// testManager builds a manager over a small skewed dataset. The defaults
// keep sessions cheap (tiny T horizon, small K) so tests run fast.
func testManager(t *testing.T, limits Limits) *Manager {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(7)
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SampleFrom(src.Split(), pop, 50000)
	m, err := New(Config{
		Data:   data,
		Source: src.Split(),
		Defaults: SessionParams{
			Eps: 1, Delta: 1e-6, Alpha: 0.02, K: 10, TBudget: 8,
		},
		Limits: limits,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func countingSpec(coord int) convex.Spec {
	return convex.Spec{
		Kind:   "positive",
		Params: json.RawMessage(fmt.Sprintf(`{"coord":%d}`, coord)),
	}
}

// distinctSpec returns a cheap linear query whose canonical key is unique
// per i — for tests that must drive the mechanism on every call, now that
// repeats of one spec are served from the session answer cache.
func distinctSpec(i int) convex.Spec {
	return convex.Spec{
		Kind:   "halfspace",
		Params: json.RawMessage(fmt.Sprintf(`{"w":[1,0,0],"threshold":%g}`, 0.001*float64(i+1))),
	}
}

func TestSessionLifecycle(t *testing.T) {
	m := testManager(t, Limits{})
	s, err := m.CreateSession(SessionParams{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.OpenSessions() != 1 {
		t.Fatalf("open sessions = %d, want 1", m.OpenSessions())
	}

	res, err := s.Query(countingSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answer) != 1 || res.Answer[0] < 0 || res.Answer[0] > 1 {
		t.Fatalf("counting answer %v outside [0, 1]", res.Answer)
	}
	if res.QueriesUsed != 1 || res.QueriesMax != 5 {
		t.Fatalf("ledger %d/%d, want 1/5", res.QueriesUsed, res.QueriesMax)
	}

	st := s.Status()
	if st.QueriesUsed != 1 || st.Closed || st.Exhausted {
		t.Fatalf("status = %+v, want 1 used, open, not exhausted", st)
	}
	if st.EpsBudget != 1 || st.EpsSpent <= 0 || st.EpsSpent > st.EpsBudget {
		t.Fatalf("privacy ledger eps spent %v of budget %v", st.EpsSpent, st.EpsBudget)
	}

	// Lookup by id returns the same session.
	got, err := m.Session(s.ID())
	if err != nil || got != s {
		t.Fatalf("Session(%q) = %v, %v", s.ID(), got, err)
	}
	if _, err := m.Session("s-999999"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("unknown id error = %v, want ErrSessionNotFound", err)
	}

	// Close, then verify queries are rejected but reads still work.
	if err := m.CloseSession(s.ID()); err != nil {
		t.Fatal(err)
	}
	if m.OpenSessions() != 0 {
		t.Fatalf("open sessions after close = %d, want 0", m.OpenSessions())
	}
	if _, err := s.Query(countingSpec(0)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("query after close error = %v, want ErrSessionClosed", err)
	}
	if err := m.CloseSession(s.ID()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("double close error = %v, want ErrSessionClosed", err)
	}
	if !s.Status().Closed {
		t.Fatal("status after close does not report closed")
	}
	if _, err := s.TranscriptJSON(); err != nil {
		t.Fatalf("transcript after close: %v", err)
	}
}

// Closing through the Session handle (not Manager.CloseSession) must free
// the manager's slot too — otherwise in-process callers leak capacity.
func TestDirectCloseFreesSlot(t *testing.T) {
	m := testManager(t, Limits{MaxSessions: 1})
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSession(SessionParams{}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("create at limit error = %v, want ErrTooManySessions", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m.OpenSessions() != 0 {
		t.Fatalf("open sessions after direct close = %d, want 0", m.OpenSessions())
	}
	if _, err := m.CreateSession(SessionParams{}); err != nil {
		t.Fatalf("create after direct close: %v", err)
	}
	// Manager-side close of the already-closed session must not
	// double-free the slot.
	if err := m.CloseSession(s.ID()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("manager close after direct close error = %v, want ErrSessionClosed", err)
	}
	if m.OpenSessions() != 1 {
		t.Fatalf("open sessions = %d, want 1 (no double free)", m.OpenSessions())
	}
}

// Closed sessions stay readable only up to the retention cap; beyond it the
// oldest are evicted so create/close churn cannot grow memory unboundedly.
func TestClosedSessionRetention(t *testing.T) {
	m := testManager(t, Limits{RetainClosed: 2})
	ids := make([]string, 4)
	for i := range ids {
		s, err := m.CreateSession(SessionParams{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// The two oldest closed sessions are gone; the two newest remain.
	for _, id := range ids[:2] {
		if _, err := m.Session(id); !errors.Is(err, ErrSessionNotFound) {
			t.Fatalf("evicted session %s lookup error = %v, want ErrSessionNotFound", id, err)
		}
	}
	for _, id := range ids[2:] {
		s, err := m.Session(id)
		if err != nil {
			t.Fatalf("retained session %s: %v", id, err)
		}
		if _, err := s.TranscriptJSON(); err != nil {
			t.Fatalf("retained session %s transcript: %v", id, err)
		}
	}
}

func TestBudgetExhaustionIsTyped(t *testing.T) {
	m := testManager(t, Limits{})
	s, err := m.CreateSession(SessionParams{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Query(countingSpec(i % 3)); err != nil {
			t.Fatalf("query %d: %v", i+1, err)
		}
	}
	_, err = s.Query(distinctSpec(0))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("query past K error = %v, want ErrBudgetExhausted", err)
	}
	if st := s.Status(); !st.Exhausted {
		t.Fatalf("status after exhaustion = %+v, want Exhausted", st)
	}
	// A repeat of an already-answered query is post-processing: it keeps
	// working from the cache even on an exhausted session.
	res, err := s.Query(countingSpec(0))
	if err != nil || !res.Cached {
		t.Fatalf("cached repeat after exhaustion = %+v, %v; want cached answer", res, err)
	}
	// Exhaustion is not closure: the slot stays open until Close.
	if st := s.Status(); st.Closed {
		t.Fatal("exhausted session reports closed")
	}
}

func TestSessionLimit(t *testing.T) {
	m := testManager(t, Limits{MaxSessions: 2})
	a, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSession(SessionParams{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSession(SessionParams{}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("create past limit error = %v, want ErrTooManySessions", err)
	}
	// Closing frees the slot.
	if err := m.CloseSession(a.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSession(SessionParams{}); err != nil {
		t.Fatalf("create after freeing a slot: %v", err)
	}
}

func TestMaxKLimit(t *testing.T) {
	m := testManager(t, Limits{MaxK: 50})
	if _, err := m.CreateSession(SessionParams{K: 51}); err == nil {
		t.Fatal("session with K above the limit was created")
	}
	if _, err := m.CreateSession(SessionParams{K: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShutdown(t *testing.T) {
	m := testManager(t, Limits{})
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	m.Shutdown()
	m.Shutdown() // idempotent
	if m.OpenSessions() != 0 {
		t.Fatalf("open sessions after shutdown = %d, want 0", m.OpenSessions())
	}
	if _, err := m.CreateSession(SessionParams{}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("create after shutdown error = %v, want ErrShuttingDown", err)
	}
	if _, err := s.Query(countingSpec(0)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("query after shutdown error = %v, want ErrSessionClosed", err)
	}
	// Audit reads survive shutdown.
	if _, err := s.TranscriptJSON(); err != nil {
		t.Fatalf("transcript after shutdown: %v", err)
	}
}

// Distinct sessions must be queryable from distinct goroutines in parallel
// with no shared-state races (run under -race).
func TestConcurrentDistinctSessions(t *testing.T) {
	m := testManager(t, Limits{})
	const workers = 8
	const queriesEach = 4
	sessions := make([]*Session, workers)
	for i := range sessions {
		s, err := m.CreateSession(SessionParams{K: queriesEach})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			for q := 0; q < queriesEach; q++ {
				if _, err := s.Query(distinctSpec(q)); err != nil {
					errs[i] = fmt.Errorf("session %s query %d: %w", s.ID(), q+1, err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sessions {
		if st := s.Status(); st.QueriesUsed != queriesEach {
			t.Fatalf("session %s answered %d queries, want %d", s.ID(), st.QueriesUsed, queriesEach)
		}
	}
}

// One session hammered from many goroutines must serialize cleanly: every
// outcome is either a successful answer or a typed budget rejection, and
// the ledger never over-counts (run under -race).
func TestConcurrentSharedSession(t *testing.T) {
	m := testManager(t, Limits{})
	const k = 6
	const workers = 4
	const attemptsEach = 3 // 12 attempts > K, so some must be rejected
	s, err := m.CreateSession(SessionParams{K: k})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var answered, rejected int
	var bad error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < attemptsEach; q++ {
				_, err := s.Query(distinctSpec(w*attemptsEach + q))
				mu.Lock()
				switch {
				case err == nil:
					answered++
				case errors.Is(err, ErrBudgetExhausted):
					rejected++
				default:
					bad = err
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if bad != nil {
		t.Fatal(bad)
	}
	if answered != k {
		t.Fatalf("answered %d queries on a K = %d session", answered, k)
	}
	if rejected != workers*attemptsEach-k {
		t.Fatalf("rejected %d, want %d", rejected, workers*attemptsEach-k)
	}
	if st := s.Status(); st.QueriesUsed != k || !st.Exhausted {
		t.Fatalf("final status %+v, want %d used and exhausted", st, k)
	}
}

// Concurrent creates must respect the session limit exactly.
func TestConcurrentCreateRespectsLimit(t *testing.T) {
	const limit = 3
	m := testManager(t, Limits{MaxSessions: limit})
	const attempts = 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	var created, refused int
	var bad error
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.CreateSession(SessionParams{})
			mu.Lock()
			switch {
			case err == nil:
				created++
			case errors.Is(err, ErrTooManySessions):
				refused++
			default:
				bad = err
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if bad != nil {
		t.Fatal(bad)
	}
	if created != limit || refused != attempts-limit {
		t.Fatalf("created %d refused %d, want %d and %d", created, refused, limit, attempts-limit)
	}
	if m.OpenSessions() != limit {
		t.Fatalf("open sessions = %d, want %d", m.OpenSessions(), limit)
	}
}

func TestOracleByName(t *testing.T) {
	for _, name := range []string{"", "noisygd", "netexp", "outputperturb", "glmreduce", "laplace-linear", "nonprivate"} {
		if _, err := OracleByName(name, 0); err != nil {
			t.Errorf("OracleByName(%q): %v", name, err)
		}
	}
	if _, err := OracleByName("bogus", 0); err == nil {
		t.Error("OracleByName accepted an unknown oracle")
	}
}

func TestQueryRejectsUnknownLoss(t *testing.T) {
	m := testManager(t, Limits{})
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(convex.Spec{Kind: "bogus"}); err == nil {
		t.Fatal("unknown loss kind accepted")
	}
	// A failed build must not consume budget.
	if st := s.Status(); st.QueriesUsed != 0 {
		t.Fatalf("failed build consumed %d queries", st.QueriesUsed)
	}
}
