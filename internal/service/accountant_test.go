package service

import (
	"errors"
	"net/http"
	"sync"
	"testing"
)

// TestHTTPAccountantDiscovery checks the registry is exposed over HTTP.
func TestHTTPAccountantDiscovery(t *testing.T) {
	_, base := startServer(t)
	var got struct {
		Accountants []string `json:"accountants"`
		Default     string   `json:"default"`
	}
	if st := doJSON(t, "GET", base+"/v1/accountants", nil, &got); st != 200 {
		t.Fatalf("accountants: status %d", st)
	}
	if len(got.Accountants) < 3 || got.Default != "advanced" {
		t.Fatalf("accountants = %+v", got)
	}
}

// TestHTTPUnknownAccountant checks an unregistered accountant name is a
// client error, not a server fault.
func TestHTTPUnknownAccountant(t *testing.T) {
	_, base := startServer(t)
	var errResp struct {
		Error string `json:"error"`
	}
	st := doJSON(t, "POST", base+"/v1/sessions", map[string]any{"accountant": "renyi"}, &errResp)
	if st != http.StatusBadRequest {
		t.Fatalf("unknown accountant: status %d, %+v", st, errResp)
	}
	if errResp.Error == "" {
		t.Fatal("unknown accountant: empty error body")
	}
}

// TestHTTPAccountantLifecycle is the end-to-end accounting path for every
// registered accountant: create a session naming it, answer queries until
// the budget rejects with 429, and require the status endpoint's remaining
// budget to decrease monotonically along the way. It also verifies the
// acceptance ordering: at identical creation parameters, the zcdp session
// sustains a strictly larger update budget than the advanced one.
func TestHTTPAccountantLifecycle(t *testing.T) {
	_, base := startServer(t)
	// K above the advanced horizon so zcdp has room to extend it.
	params := func(acct string) map[string]any {
		return map[string]any{"k": 6, "tbudget": 2, "accountant": acct}
	}
	updatesMax := map[string]int{}
	for _, acct := range []string{"basic", "advanced", "zcdp"} {
		var sess SessionStatus
		if st := doJSON(t, "POST", base+"/v1/sessions", params(acct), &sess); st != 201 {
			t.Fatalf("%s: create: status %d", acct, st)
		}
		if sess.Accountant != acct {
			t.Fatalf("%s: created with accountant %q", acct, sess.Accountant)
		}
		if sess.EpsRemaining <= 0 || sess.EpsRemaining > sess.EpsBudget {
			t.Fatalf("%s: initial remaining %v outside (0, %v]", acct, sess.EpsRemaining, sess.EpsBudget)
		}
		updatesMax[acct] = sess.UpdatesMax

		lastRemaining := sess.EpsRemaining
		var got429 bool
		for i := 0; i < 12 && !got429; i++ {
			var res QueryResult
			var errResp struct {
				Error string `json:"error"`
			}
			st := doJSON(t, "POST", base+"/v1/sessions/"+sess.ID+"/query", distinctSpec(i), &res)
			switch st {
			case 200:
				// Remaining must never increase, and ⊤ answers must
				// strictly decrease it.
				if res.EpsRemaining > lastRemaining+1e-12 {
					t.Fatalf("%s: remaining rose %v → %v", acct, lastRemaining, res.EpsRemaining)
				}
				if res.Top && !(res.EpsRemaining < lastRemaining) {
					t.Fatalf("%s: ⊤ answer left remaining at %v", acct, res.EpsRemaining)
				}
				lastRemaining = res.EpsRemaining
				// The status endpoint agrees with the query response.
				var st2 SessionStatus
				if code := doJSON(t, "GET", base+"/v1/sessions/"+sess.ID, nil, &st2); code != 200 {
					t.Fatalf("%s: status: %d", acct, code)
				}
				if st2.EpsRemaining != res.EpsRemaining {
					t.Fatalf("%s: status remaining %v != query remaining %v", acct, st2.EpsRemaining, res.EpsRemaining)
				}
			case http.StatusTooManyRequests:
				got429 = true
			default:
				doJSON(t, "GET", base+"/v1/sessions/"+sess.ID, nil, &errResp)
				t.Fatalf("%s: query %d: status %d", acct, i, st)
			}
		}
		if !got429 {
			t.Fatalf("%s: never exhausted the budget", acct)
		}
		var final SessionStatus
		if st := doJSON(t, "GET", base+"/v1/sessions/"+sess.ID, nil, &final); st != 200 || !final.Exhausted {
			t.Fatalf("%s: final status %d %+v, want exhausted", acct, st, final)
		}
	}
	if updatesMax["zcdp"] <= updatesMax["advanced"] {
		t.Errorf("zcdp updates_max = %d, want > advanced %d at identical (ε, δ, α)",
			updatesMax["zcdp"], updatesMax["advanced"])
	}
	t.Logf("updates_max by accountant: %v", updatesMax)
}

// TestAccountantParamsNotInheritedAcrossStrategies checks a session that
// names its own accountant does not inherit the manager default's
// accountant parameters (another strategy's knobs would be rejected as
// unknown fields).
func TestAccountantParamsNotInheritedAcrossStrategies(t *testing.T) {
	def := DefaultSessionParams()
	def.Accountant = "advanced"
	def.AccountantParams = []byte(`{"delta_prime": 1e-8}`)
	p := SessionParams{Accountant: "zcdp"}.merged(def)
	if len(p.AccountantParams) != 0 {
		t.Errorf("zcdp session inherited advanced params %s", p.AccountantParams)
	}
	q := SessionParams{}.merged(def)
	if q.Accountant != "advanced" || len(q.AccountantParams) == 0 {
		t.Errorf("default session lost accountant params: %+v", q)
	}
}

// TestConcurrentSharedSessionAccountants hammers one session per
// accountant from concurrent queriers and status readers; under -race (the
// CI default) this proves the accountant needs no serialization beyond the
// session mutex on the query path, while lock-free status reads hit the
// accountant's own mutex concurrently.
func TestConcurrentSharedSessionAccountants(t *testing.T) {
	m := testManager(t, Limits{})
	for _, acct := range []string{"basic", "advanced", "zcdp"} {
		s, err := m.CreateSession(SessionParams{K: 6, Accountant: acct})
		if err != nil {
			t.Fatalf("%s: %v", acct, err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(2)
			go func(w int) {
				defer wg.Done()
				for q := 0; q < 4; q++ {
					if _, err := s.Query(distinctSpec(w*4 + q)); err != nil && !errors.Is(err, ErrBudgetExhausted) {
						t.Errorf("%s: query: %v", acct, err)
						return
					}
				}
			}(w)
			go func() {
				defer wg.Done()
				last := s.Status().EpsRemaining
				for q := 0; q < 20; q++ {
					st := s.Status()
					if st.EpsRemaining > last+1e-12 {
						t.Errorf("%s: remaining rose %v → %v", acct, last, st.EpsRemaining)
						return
					}
					last = st.EpsRemaining
				}
			}()
		}
		wg.Wait()
		if st := s.Status(); st.QueriesUsed != 6 || !st.Exhausted {
			t.Fatalf("%s: final status %+v", acct, st)
		}
	}
}
