package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/universe"
)

// testManagerObs builds a manager identical to testManager's but with a
// metrics registry attached.
func testManagerObs(t *testing.T) (*Manager, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(7)
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SampleFrom(src.Split(), pop, 50000)
	m, err := New(Config{
		Data:   data,
		Source: src.Split(),
		Defaults: SessionParams{
			Eps: 1, Delta: 1e-6, Alpha: 0.02, K: 10, TBudget: 8,
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, reg
}

// driveGolden runs one fixed query workload against a handler and returns
// every response body that must be deterministic: each query result, the
// batch result, and the final transcript. Status bodies are excluded (the
// Created timestamp is wall-clock).
func driveGolden(t *testing.T, h http.Handler) []string {
	t.Helper()
	do := func(method, path, body string) (int, string) {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	code, body := do("POST", "/v1/sessions", `{"k": 8}`)
	if code != http.StatusCreated {
		t.Fatalf("create session: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		t.Fatal(err)
	}

	var out []string
	record := func(method, path, body string) {
		code, resp := do(method, path, body)
		if code != http.StatusOK {
			t.Fatalf("%s %s: %d %s", method, path, code, resp)
		}
		out = append(out, resp)
	}
	base := "/v1/sessions/" + created.ID
	// Misses, a repeat (cache hit), and a mixed batch — every disposition
	// the metrics layer counts.
	record("POST", base+"/query", `{"kind":"logistic","params":{"temp":0.5}}`)
	record("POST", base+"/query", `{"kind":"positive","params":{"coord":0}}`)
	record("POST", base+"/query", `{"kind":"logistic","params":{"temp":0.5}}`)
	record("POST", base+"/queries:batch", `{"queries":[
		{"kind":"positive","params":{"coord":1}},
		{"kind":"logistic","params":{"temp":0.5}},
		{"kind":"halfspace","params":{"w":[1,0,0],"threshold":0.25}}
	]}`)
	record("GET", base+"/transcript", "")
	return out
}

// TestObservabilityGolden pins the layer-wide invariant: enabling the
// full observability stack — registry, collectors, HTTP middleware, and
// structured logging — leaves every released answer and the transcript
// byte-identical to a manager with observability off.
func TestObservabilityGolden(t *testing.T) {
	plain := testManager(t, Limits{})
	defer plain.Shutdown()
	want := driveGolden(t, NewHandler(plain))

	obsMgr, reg := testManagerObs(t)
	defer obsMgr.Shutdown()
	var logBuf bytes.Buffer
	h := obs.Middleware(reg, NewHandler(obsMgr), obs.MiddlewareOptions{
		Logger:      slog.New(slog.NewJSONHandler(&logBuf, nil)),
		SessionInfo: obsMgr.SessionAccountant,
	})
	got := driveGolden(t, h)

	if len(got) != len(want) {
		t.Fatalf("response counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("response %d diverged with observability on:\nplain: %s\nobs:   %s", i, want[i], got[i])
		}
	}

	// The observation side actually happened — the invariant is "observed
	// and identical", not "identical because nothing was recorded".
	hits := reg.Counter("pmwcm_queries_total", "", obs.Labels{"disposition": "hit"}).Value()
	if hits == 0 {
		t.Error("cache-hit counter never moved during the golden workload")
	}
	if reg.Counter("pmwcm_batches_total", "", nil).Value() != 1 {
		t.Error("batch counter != 1")
	}
	if !strings.Contains(logBuf.String(), `"route":"POST /v1/sessions/{id}/query"`) {
		t.Errorf("request log missing query route: %s", logBuf.String())
	}
}

// TestSessionStatusCacheHits pins the status-side hit ledger the
// per-session gauge is built from.
func TestSessionStatusCacheHits(t *testing.T) {
	m, reg := testManagerObs(t)
	defer m.Shutdown()
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(countingSpec(0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := s.Query(countingSpec(0))
		if err != nil || !res.Cached {
			t.Fatalf("repeat %d: cached=%v err=%v", i, res.Cached, err)
		}
	}
	if got := s.Status().CacheHits; got != 3 {
		t.Fatalf("status cache hits = %d, want 3", got)
	}

	// The scrape-time collector reports the same ledger, labeled by
	// session and accountant.
	var gauge, spent float64
	for _, f := range reg.Snapshot() {
		for _, smp := range f.Samples {
			if smp.Labels["session"] != s.ID() {
				continue
			}
			switch f.Name {
			case "pmwcm_session_cache_hits":
				gauge = smp.Value
			case "pmwcm_session_eps_spent":
				spent = smp.Value
			}
		}
	}
	if gauge != 3 {
		t.Fatalf("collector cache-hits gauge = %v, want 3", gauge)
	}
	if st := s.Status(); spent != st.EpsSpent {
		t.Fatalf("collector eps-spent gauge %v != status %v", spent, st.EpsSpent)
	}
}

// TestMetricsScrapeUnderLoad hammers /metrics (both formats) and /healthz
// concurrently with query, batch, and status traffic. Run with -race this
// is the data-race gate for the whole scrape path.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	m, reg := testManagerObs(t)
	defer m.Shutdown()
	h := obs.Middleware(reg, NewHandler(m), obs.MiddlewareOptions{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	do := func(method, path, body string) (int, []byte) {
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	const workers, iters = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, body := do("POST", "/v1/sessions", "")
			var created struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &created); err != nil {
				t.Errorf("worker %d: create: %v", w, err)
				return
			}
			base := "/v1/sessions/" + created.ID
			for i := 0; i < iters; i++ {
				// Repeats of one hot spec keep the workload inside the cache
				// (no budget exhaustion), with an occasional batch.
				spec := fmt.Sprintf(`{"kind":"halfspace","params":{"w":[1,0,0],"threshold":%g}}`, 0.01*float64(w+1))
				if code, b := do("POST", base+"/query", spec); code != http.StatusOK {
					t.Errorf("worker %d query: %d %s", w, code, b)
				}
				if i%5 == 0 {
					do("POST", base+"/queries:batch", `{"queries":[`+spec+`,`+spec+`]}`)
					do("GET", base, "")
				}
			}
		}(w)
	}
	// Scrapers race the query traffic.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if code, b := do("GET", "/metrics", ""); code != http.StatusOK || !bytes.Contains(b, []byte("pmwcm_")) {
					t.Errorf("prom scrape: %d", code)
				}
				if code, b := do("GET", "/metrics?format=json", ""); code != http.StatusOK || !json.Valid(b) {
					t.Errorf("json scrape: %d", code)
				}
				if code, _ := do("GET", "/healthz", ""); code != http.StatusOK {
					t.Errorf("healthz: %d", code)
				}
			}
		}()
	}
	wg.Wait()

	// Post-hammer accounting: every query answered was counted once.
	var queries uint64
	for _, d := range []string{"hit", "top", "bottom"} {
		queries += reg.Counter("pmwcm_queries_total", "", obs.Labels{"disposition": d}).Value()
	}
	if queries == 0 {
		t.Fatal("no queries counted during hammer")
	}
	if got := reg.Counter("pmwcm_http_requests_total", "",
		obs.Labels{"route": "GET /metrics", "class": "2xx"}).Value(); got == 0 {
		t.Fatal("metrics route not counted by middleware")
	}
}

// TestHealthzAndVersionEndpoints covers the two operational read
// endpoints added alongside /metrics.
func TestHealthzAndVersionEndpoints(t *testing.T) {
	m, _ := testManagerObs(t)
	defer m.Shutdown()
	if _, err := m.CreateSession(SessionParams{}); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(m)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health Health
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.OpenSessions != 1 || health.UptimeSec < 0 || health.Durable {
		t.Fatalf("healthz = %+v", health)
	}
	if !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatal("healthz lost its ok field")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/version", nil))
	var v obs.VersionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" {
		t.Fatalf("version = %+v", v)
	}
}

// TestMetricsEndpointAbsentWithoutRegistry: a manager without a registry
// serves no /metrics route at all.
func TestMetricsEndpointAbsentWithoutRegistry(t *testing.T) {
	m := testManager(t, Limits{})
	defer m.Shutdown()
	rec := httptest.NewRecorder()
	NewHandler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("metrics without registry: %d, want 404", rec.Code)
	}
}
