package service

// metrics.go instruments the serving subsystem with internal/obs. Two
// mechanisms divide the work:
//
//   - svcMetrics holds hot-path instruments (query dispositions, batch
//     shapes) updated inline with single atomic operations;
//   - Manager.collect emits scrape-time gauges whose cardinality changes
//     at runtime (per-session and per-accountant budget state), reading
//     through the same Status snapshots the status endpoints serve.
//
// The layer-wide invariant: instrumentation is observation only. No
// instrument draws randomness, takes a budget decision, or writes
// mechanism state, so a manager with metrics enabled releases answers,
// ledgers, and transcripts bit-identical to one without (pinned by
// TestObservabilityGolden).

import (
	"time"

	"repro/internal/obs"
)

// svcMetrics are the manager's hot-path instruments. A nil *svcMetrics —
// or one built from a nil registry, whose fields are all nil — makes
// every update a no-op, so the query path instruments unconditionally.
type svcMetrics struct {
	// hits/tops/bottoms partition answered queries by disposition:
	// cache-served, budget-spending ⊤, free ⊥.
	hits, tops, bottoms *obs.Counter
	// gated counts cache lookups that found an entry whose ⊤ spend was
	// not yet durable and had to take the locked write-ahead path.
	gated *obs.Counter
	// batches counts batch requests; batchSize observes their shapes.
	batches   *obs.Counter
	batchSize *obs.Histogram
	// evictions/pageins count residency transitions: sessions folded out
	// of memory and sessions restored back in on touch.
	evictions, pageins *obs.Counter
}

// newSvcMetrics builds the manager's instruments (all nil when reg is).
func newSvcMetrics(reg *obs.Registry) *svcMetrics {
	const qHelp = "Queries answered, by disposition (hit = answer cache, top = budget-spending update, bottom = free sparse-vector answer)."
	return &svcMetrics{
		hits:    reg.Counter("pmwcm_queries_total", qHelp, obs.Labels{"disposition": "hit"}),
		tops:    reg.Counter("pmwcm_queries_total", qHelp, obs.Labels{"disposition": "top"}),
		bottoms: reg.Counter("pmwcm_queries_total", qHelp, obs.Labels{"disposition": "bottom"}),
		gated: reg.Counter("pmwcm_cache_gated_total",
			"Cache lookups that found an entry gated on an in-flight durability checkpoint.", nil),
		batches: reg.Counter("pmwcm_batches_total", "Batch query requests served.", nil),
		batchSize: reg.Histogram("pmwcm_batch_size",
			"Queries per batch request.", obs.SizeBuckets, nil),
		evictions: reg.Counter("pmwcm_session_evictions_total",
			"Sessions evicted from residency (folded into the store, dropped from memory).", nil),
		pageins: reg.Counter("pmwcm_session_pageins_total",
			"Paged-out sessions restored into memory on touch.", nil),
	}
}

// The session query path calls these nil-safe helpers; with metrics
// disabled each is a nil check and nothing else.

func (m *svcMetrics) hit() {
	if m != nil {
		m.hits.Inc()
	}
}

func (m *svcMetrics) top() {
	if m != nil {
		m.tops.Inc()
	}
}

func (m *svcMetrics) bottom() {
	if m != nil {
		m.bottoms.Inc()
	}
}

func (m *svcMetrics) gate() {
	if m != nil {
		m.gated.Inc()
	}
}

func (m *svcMetrics) batch(size int) {
	if m != nil {
		m.batches.Inc()
		m.batchSize.Observe(float64(size))
	}
}

func (m *svcMetrics) evicted() {
	if m != nil {
		m.evictions.Inc()
	}
}

func (m *svcMetrics) pagedIn() {
	if m != nil {
		m.pageins.Inc()
	}
}

// Metrics returns the registry the manager was configured with (nil when
// observability is off).
func (m *Manager) Metrics() *obs.Registry { return m.cfg.Metrics }

// Started returns the manager's construction time, the anchor for the
// healthz uptime report.
func (m *Manager) Started() time.Time { return m.started }

// StateDir returns the durable store's location — a state directory path
// or a remote store URL ("" when the manager is memory-only).
func (m *Manager) StateDir() string {
	if m.cfg.Store == nil {
		return ""
	}
	return m.cfg.Store.Location()
}

// WALMode reports whether the manager runs its write path through
// per-session write-ahead logs with group-committed fsyncs.
func (m *Manager) WALMode() bool { return m.cfg.WAL }

// SessionAccountant resolves a session id to its accountant name for log
// enrichment. It reads only immutable creation parameters of *resident*
// sessions — deliberately not through Manager.Session, which would page
// an evicted session back in just to label a log line.
func (m *Manager) SessionAccountant(id string) (string, bool) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return "", false
	}
	return s.params.Accountant, true
}

// collect is the manager's scrape-time collector: session counts, uptime,
// and per-session / per-accountant budget gauges. It reads session state
// through Statuses — the same read path the status endpoints use — so a
// scrape can never perturb mechanism state.
func (m *Manager) collect(emit func(obs.Sample)) {
	m.mu.Lock()
	open, retained := m.open, len(m.closedIDs)
	resident, paged := m.residentLive, len(m.pagedOut)
	m.mu.Unlock()
	emit(obs.Sample{Name: "pmwcm_sessions_open",
		Help: "Currently open sessions.", Value: float64(open)})
	emit(obs.Sample{Name: "pmwcm_sessions_retained_closed",
		Help: "Closed sessions retained for status/transcript reads.", Value: float64(retained)})
	emit(obs.Sample{Name: "pmwcm_sessions_resident",
		Help: "Live sessions currently holding memory.", Value: float64(resident)})
	emit(obs.Sample{Name: "pmwcm_sessions_paged_out",
		Help: "Open sessions evicted to the store, paged in on next touch.", Value: float64(paged)})
	emit(obs.Sample{Name: "pmwcm_uptime_seconds",
		Help: "Seconds since the manager was constructed.", Value: time.Since(m.started).Seconds()})

	// Per-accountant aggregates accumulate across sessions; per-session
	// gauges expose each ledger directly (cardinality is bounded by the
	// session retention limits).
	type acctAgg struct {
		sessions                       int
		epsSpent, deltaSpent, epsRem   float64
		updatesUsed, queriesUsed, hits int
	}
	aggs := map[string]*acctAgg{}
	const (
		sessHelp = "Per-session privacy ledger gauges."
		acctHelp = "Per-accountant aggregates over live and retained sessions."
	)
	for _, st := range m.Statuses() {
		labels := obs.Labels{"session": st.ID, "accountant": st.Accountant}
		emit(obs.Sample{Name: "pmwcm_session_eps_spent", Help: sessHelp, Labels: labels, Value: st.EpsSpent})
		emit(obs.Sample{Name: "pmwcm_session_eps_remaining", Help: sessHelp, Labels: labels, Value: st.EpsRemaining})
		emit(obs.Sample{Name: "pmwcm_session_queries_used", Help: sessHelp, Labels: labels, Value: float64(st.QueriesUsed)})
		emit(obs.Sample{Name: "pmwcm_session_cache_hits", Help: sessHelp, Labels: labels, Value: float64(st.CacheHits)})
		a := aggs[st.Accountant]
		if a == nil {
			a = &acctAgg{}
			aggs[st.Accountant] = a
		}
		a.sessions++
		a.epsSpent += st.EpsSpent
		a.deltaSpent += st.DeltaSpent
		a.epsRem += st.EpsRemaining
		a.updatesUsed += st.UpdatesUsed
		a.queriesUsed += st.QueriesUsed
		a.hits += int(st.CacheHits)
	}
	for name, a := range aggs {
		labels := obs.Labels{"accountant": name}
		emit(obs.Sample{Name: "pmwcm_accountant_sessions", Help: acctHelp, Labels: labels, Value: float64(a.sessions)})
		emit(obs.Sample{Name: "pmwcm_accountant_eps_spent", Help: acctHelp, Labels: labels, Value: a.epsSpent})
		emit(obs.Sample{Name: "pmwcm_accountant_delta_spent", Help: acctHelp, Labels: labels, Value: a.deltaSpent})
		emit(obs.Sample{Name: "pmwcm_accountant_eps_remaining", Help: acctHelp, Labels: labels, Value: a.epsRem})
		emit(obs.Sample{Name: "pmwcm_accountant_updates_used", Help: acctHelp, Labels: labels, Value: float64(a.updatesUsed)})
		emit(obs.Sample{Name: "pmwcm_accountant_queries_used", Help: acctHelp, Labels: labels, Value: float64(a.queriesUsed)})
		emit(obs.Sample{Name: "pmwcm_accountant_cache_hits", Help: acctHelp, Labels: labels, Value: float64(a.hits)})
	}
}
