package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/transcript"
	"repro/internal/universe"
)

// Session is one analyst's interactive run of the mechanism: a core.Server
// plus the ledger and transcript around it. A core.Server is inherently
// sequential, so every operation that touches it serializes on the
// session's mutex; distinct sessions never contend.
//
// When the manager is durable (Config.Store), the session checkpoints its
// complete state — mechanism snapshot, ledger, transcript — to its state
// file: on creation, on every ⊤ answer (write-ahead: the spend reaches disk
// before the answer reaches the analyst, so a crash can lose a ⊥-only tail
// but never a recorded budget spend), on Checkpoint, and on Close.
type Session struct {
	id      string
	params  SessionParams
	u       universe.Universe
	created time.Time
	oracle  string
	store   *persist.Store // nil when the manager is memory-only

	// onClose releases the session's manager slot; invoked exactly once,
	// outside the state mutex, when the session closes.
	onClose func()

	mu     sync.Mutex
	rec    *transcript.Recorder
	closed bool
}

func newSession(id string, p SessionParams, srv *core.Server, u universe.Universe, created time.Time, oracle string, store *persist.Store, onClose func()) *Session {
	rec := transcript.NewRecorder(srv)
	rec.T.Meta["eps"] = p.Eps
	rec.T.Meta["delta"] = p.Delta
	rec.T.Meta["alpha"] = p.Alpha
	rec.T.Meta["k"] = float64(p.K)
	return &Session{
		id:      id,
		params:  p,
		u:       u,
		created: created,
		oracle:  oracle,
		store:   store,
		onClose: onClose,
		rec:     rec,
	}
}

// restoreSession rebuilds a Session around an already-restored recorder
// (server + transcript), carrying over identity and the closed flag.
func restoreSession(st *persist.SessionState, p SessionParams, rec *transcript.Recorder, u universe.Universe, store *persist.Store, onClose func()) *Session {
	return &Session{
		id:      st.ID,
		params:  p,
		u:       u,
		created: st.Created,
		oracle:  st.Oracle,
		store:   store,
		onClose: onClose,
		rec:     rec,
		closed:  st.Closed,
	}
}

// stateLocked assembles the session's durable state (called under mu).
func (s *Session) stateLocked() (*persist.SessionState, error) {
	raw, err := json.Marshal(s.params)
	if err != nil {
		return nil, fmt.Errorf("service: encoding session params: %w", err)
	}
	return &persist.SessionState{
		ID:         s.id,
		Created:    s.created,
		Closed:     s.closed,
		Oracle:     s.oracle,
		Params:     raw,
		Core:       s.rec.Srv.Snapshot(),
		Transcript: s.rec.T,
	}, nil
}

// saveLocked checkpoints the session to its state file (called under mu;
// no-op without a store). Holding the mutex across the write is deliberate:
// the snapshot and the file must agree, and state files are small.
func (s *Session) saveLocked() error {
	if s.store == nil {
		return nil
	}
	st, err := s.stateLocked()
	if err != nil {
		return err
	}
	if err := s.store.SaveSession(st); err != nil {
		return fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	return nil
}

// Checkpoint forces a durable snapshot of the session's current state. It
// fails with ErrNotDurable when the manager has no state directory.
// Checkpointing a closed session rewrites its (final) state and is
// harmless.
func (s *Session) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return ErrNotDurable
	}
	return s.saveLocked()
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Params returns the session's (fully merged) creation parameters.
func (s *Session) Params() SessionParams { return s.params }

// QueryResult is one answered query plus the ledger movement it caused.
type QueryResult struct {
	// Loss is the resolved instance name of the queried loss.
	Loss string `json:"loss"`
	// Answer is the released parameter vector θ̂ʲ.
	Answer []float64 `json:"answer"`
	// Top reports the sparse-vector disposition: true means ⊤ (an oracle
	// call was spent and the hypothesis updated), false means ⊥ (answered
	// from the public hypothesis, no marginal budget).
	Top bool `json:"top"`
	// EpsSpent, DeltaSpent are this query's incremental oracle spend;
	// RhoSpent its zCDP cost when the oracle certifies one.
	EpsSpent   float64 `json:"eps_spent"`
	DeltaSpent float64 `json:"delta_spent"`
	RhoSpent   float64 `json:"rho_spent,omitempty"`
	// EpsRemaining, DeltaRemaining are the unspent budget after this query
	// under the session's accountant.
	EpsRemaining   float64 `json:"eps_remaining"`
	DeltaRemaining float64 `json:"delta_remaining"`
	// QueriesUsed / QueriesMax and UpdatesUsed / UpdatesMax are the ledger
	// counters after this query.
	QueriesUsed int `json:"queries_used"`
	QueriesMax  int `json:"queries_max"`
	UpdatesUsed int `json:"updates_used"`
	UpdatesMax  int `json:"updates_max"`
}

// Query resolves spec against the loss registry and answers it. It returns
// ErrSessionClosed after Close and ErrBudgetExhausted once the session's K
// queries or T updates are spent.
func (s *Session) Query(spec convex.Spec) (*QueryResult, error) {
	l, err := convex.Build(s.u, spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.rec.Srv.Halted() {
		return nil, ErrBudgetExhausted
	}
	theta, err := s.rec.Answer(l)
	if err == core.ErrHalted {
		return nil, ErrBudgetExhausted
	}
	if err != nil {
		return nil, fmt.Errorf("service: query %q: %w", l.Name(), err)
	}
	srv := s.rec.Srv
	ev := s.rec.T.Events[len(s.rec.T.Events)-1]
	if ev.Top {
		// Write-ahead checkpoint: a ⊤ answer spent budget, so the spend
		// must reach disk before the reply is sent. On failure the reply is
		// an error while the in-memory ledger and transcript keep the spend
		// and the answer (the event stays readable via the transcript
		// endpoint — it is already-released information and trimming it
		// would desynchronize transcript and ledger). The guarantee is
		// about accounting, not secrecy: budget can be over-counted by a
		// failed reply, never spent without being counted.
		if err := s.saveLocked(); err != nil {
			return nil, err
		}
	}
	rem := srv.Remaining()
	return &QueryResult{
		Loss:           l.Name(),
		Answer:         theta,
		Top:            ev.Top,
		EpsSpent:       ev.EpsSpent,
		DeltaSpent:     ev.DeltaSpent,
		RhoSpent:       ev.RhoSpent,
		EpsRemaining:   rem.Eps,
		DeltaRemaining: rem.Delta,
		QueriesUsed:    srv.Answered(),
		QueriesMax:     s.params.K,
		UpdatesUsed:    srv.Updates(),
		UpdatesMax:     srv.Params().T,
	}, nil
}

// SessionStatus is a point-in-time snapshot of a session's ledger.
type SessionStatus struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	Closed  bool      `json:"closed"`
	// Exhausted reports that the mechanism has halted (K queries answered
	// or T updates spent); further queries are rejected.
	Exhausted bool `json:"exhausted"`

	QueriesUsed int `json:"queries_used"`
	QueriesMax  int `json:"queries_max"`
	UpdatesUsed int `json:"updates_used"`
	UpdatesMax  int `json:"updates_max"`

	// Accountant is the accounting mode composing the session's spends.
	Accountant string `json:"accountant"`

	// EpsBudget, DeltaBudget is the session's total budget; EpsSpent,
	// DeltaSpent the mechanism's current privacy bound for the interaction
	// so far (the up-front sparse-vector slice plus composed oracle calls);
	// EpsRemaining, DeltaRemaining the unspent difference, clamped at zero.
	EpsBudget      float64 `json:"eps_budget"`
	DeltaBudget    float64 `json:"delta_budget"`
	EpsSpent       float64 `json:"eps_spent"`
	DeltaSpent     float64 `json:"delta_spent"`
	EpsRemaining   float64 `json:"eps_remaining"`
	DeltaRemaining float64 `json:"delta_remaining"`

	// Eps0, Delta0 is the per-oracle-call budget of the composition
	// schedule — what one more ⊤ answer would cost; Rho0 the per-call zCDP
	// cost when the oracle certifies one.
	Eps0   float64 `json:"eps0"`
	Delta0 float64 `json:"delta0"`
	Rho0   float64 `json:"rho0,omitempty"`
}

// Status returns the session's current ledger snapshot.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	srv := s.rec.Srv
	p := srv.Params()
	priv := srv.Privacy()
	rem := srv.Remaining()
	return SessionStatus{
		ID:             s.id,
		Created:        s.created,
		Closed:         s.closed,
		Exhausted:      srv.Halted(),
		QueriesUsed:    srv.Answered(),
		QueriesMax:     s.params.K,
		UpdatesUsed:    srv.Updates(),
		UpdatesMax:     p.T,
		Accountant:     srv.AccountantName(),
		EpsBudget:      s.params.Eps,
		DeltaBudget:    s.params.Delta,
		EpsSpent:       priv.Eps,
		DeltaSpent:     priv.Delta,
		EpsRemaining:   rem.Eps,
		DeltaRemaining: rem.Delta,
		Eps0:           p.Eps0,
		Delta0:         p.Delta0,
		Rho0:           srv.CallCost().Rho,
	}
}

// TranscriptRecord is the serialized audit artifact of a session: the full
// event transcript plus the cumulative spend it implies.
type TranscriptRecord struct {
	ID         string                 `json:"id"`
	Transcript *transcript.Transcript `json:"transcript"`
	// Tops counts budget-spending (⊤) exchanges.
	Tops int `json:"tops"`
	// CumEps, CumDelta is the cumulative oracle spend over the recorded
	// events (basic composition); EpsBound, DeltaBound the mechanism's
	// tighter total guarantee including the sparse-vector slice.
	CumEps     float64 `json:"cum_eps"`
	CumDelta   float64 `json:"cum_delta"`
	EpsBound   float64 `json:"eps_bound"`
	DeltaBound float64 `json:"delta_bound"`
}

// TranscriptJSON serializes the session's transcript record. Marshaling
// happens under the session lock, so the snapshot is consistent even while
// other goroutines keep querying.
func (s *Session) TranscriptJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eps, delta := s.rec.T.SpentOracle()
	priv := s.rec.Srv.Privacy()
	return json.Marshal(TranscriptRecord{
		ID:         s.id,
		Transcript: s.rec.T,
		Tops:       s.rec.T.Tops(),
		CumEps:     eps,
		CumDelta:   delta,
		EpsBound:   priv.Eps,
		DeltaBound: priv.Delta,
	})
}

// Close permanently stops the session and releases its manager slot.
// Subsequent queries fail with ErrSessionClosed; status and transcript
// reads keep working (subject to the manager's closed-session retention
// limit). On a durable manager the final state is checkpointed with the
// closed flag, so the session stays permanently closed across restarts;
// a checkpoint failure is reported but the session closes regardless.
// Closing twice returns ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.closed = true
	saveErr := s.saveLocked()
	cb := s.onClose
	s.onClose = nil
	s.mu.Unlock()
	if cb != nil {
		cb()
	}
	return saveErr
}

// suspend checkpoints a live session for a graceful restart and stops
// serving it, without recording a close: the state file keeps Closed=false,
// so the next manager over the same state directory resumes the session
// exactly where it stopped. Already-closed sessions are left alone.
func (s *Session) suspend() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	// Best-effort: shutdown must not wedge on a full disk; the last
	// ⊤-answer checkpoint is still on disk, so at worst a ⊥-only tail of
	// the interaction is lost.
	_ = s.saveLocked()
	s.closed = true
	cb := s.onClose
	s.onClose = nil
	s.mu.Unlock()
	if cb != nil {
		cb()
	}
}
