package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/transcript"
	"repro/internal/universe"
)

// Session is one analyst's interactive run of the mechanism: a core.Server
// plus the ledger and transcript around it. A core.Server is inherently
// sequential, so every operation that drives it serializes on the
// session's mutex; distinct sessions never contend.
//
// The read path around the mechanism is concurrent. Every released answer
// enters the session's answer cache, keyed by the query's canonical spec
// (convex.CanonicalKey); a repeat of the same canonical query is answered
// from the cache — pure post-processing of already-released information,
// spending zero budget, advancing no noise stream, and (once the entry's
// spend is durable) never taking the session mutex, so cache hits proceed
// even while a miss holds the mechanism. On a durable manager a ⊤
// answer's entry is gated until its write-ahead checkpoint lands
// (cacheEntry.gateSeq), so the cache can never leak an answer whose spend
// is not yet on disk. The cache is rebuilt from the transcript on
// restore, so the zero-spend property survives snapshot/restart.
//
// When the manager is durable (Config.Store), the session checkpoints its
// complete state — mechanism snapshot, ledger, transcript — to its state
// file: on creation, on every ⊤ answer (write-ahead: the spend reaches disk
// before the answer reaches the analyst, so a crash can lose a ⊥-only tail
// but never a recorded budget spend), on Checkpoint, and on Close. The
// state is assembled under the session mutex but written under a separate
// save mutex, so status, transcript, and cache reads never block on fsync;
// a per-state sequence number keeps concurrent writers from clobbering a
// newer checkpoint with an older one.
type Session struct {
	id      string
	params  SessionParams
	u       universe.Universe
	created time.Time
	oracle  string
	store   persist.Backend // nil when the manager is memory-only
	// met are the manager's shared hot-path instruments (all-nil no-ops
	// when metrics are disabled); cacheHits is this session's lifetime
	// cache-served answer count, reported in SessionStatus.
	met       *svcMetrics
	cacheHits atomic.Int64

	// onClose releases the session's manager slot; invoked exactly once,
	// outside the state mutex, when the session closes.
	onClose func()

	mu  sync.Mutex
	rec *transcript.Recorder

	// closed flips once, under mu; it is atomic so the lock-free cache-hit
	// path can observe it without waiting on an in-flight miss.
	closed atomic.Bool

	// pagedOut flips once, under mu, when the manager evicts the session
	// from residency (evict); every subsequent operation on this object
	// fails with ErrPagedOut, which the manager-level wrappers translate
	// into a page-in plus retry. Unlike closed it is not permanent for the
	// *session* — only for this in-memory incarnation of it.
	pagedOut atomic.Bool

	// lastTouch is the unix-nano time of the last manager-level access,
	// the LRU clock idle eviction and -max-resident victim selection read.
	lastTouch atomic.Int64

	// view is the lock-free ledger snapshot served with cache-hit answers,
	// republished under mu after every state change.
	view atomic.Pointer[ledgerView]

	// cache is the answer cache: canonical spec key → released answer.
	// Entries are immutable once inserted; the first answer for a key wins
	// (later identical queries never reach the mechanism).
	cache struct {
		sync.RWMutex
		m map[string]*cacheEntry
	}

	// saveMu serializes durable writes outside mu. savedSeq (guarded by
	// saveMu) is the transcript length of the newest *durable* state —
	// snapshot file, or snapshot plus synced WAL records: query-path
	// commits are skipped when a newer superset is already durable, which
	// keeps the write-ahead guarantee while letting an overtaken writer
	// return immediately. durableSeq mirrors savedSeq atomically for the
	// lock-free cache-hit path: a ⊤ answer's cache entry is only served
	// once its spend is durable (see servable).
	saveMu     sync.Mutex
	savedSeq   int
	durableSeq atomic.Int64

	// WAL mode (attachWAL): instead of rewriting the whole state file per
	// ⊤ answer, every event appends one record to the session's
	// append-only log, ⊤ records are made durable through the manager's
	// group committer, and the log is periodically compacted back into the
	// snapshot format. walMode is immutable after construction, so the
	// query path reads it without a lock. walPending (guarded by mu)
	// queues records in event order between drains; wal, walAppendedSeq,
	// and walBroken are guarded by saveMu. walAppendedSeq is the highest
	// event seq written (not necessarily synced) to the log; walBroken
	// flips after a failed append or sync — the file may end mid-frame, so
	// further appends are forbidden and durable points fall back to full
	// snapshots until a compaction's Reset heals the log.
	walMode        bool
	com            *persist.GroupCommitter
	compactRecords int
	compactBytes   int64
	walPending     []*persist.WALRecord
	wal            *persist.WAL
	walAppendedSeq int
	walBroken      bool
}

// cacheEntry is one released answer, immutable once cached. gateSeq is 0
// for answers that may be re-released unconditionally (⊥ answers, which
// spend nothing; entries rebuilt from an on-disk transcript; everything on
// a memory-only manager) and the transcript seq of the entry's ⊤ event
// otherwise: the entry is served only once the durable watermark covers
// that seq, so the write-ahead rule — spend on disk before the answer is
// released — holds on the cache path too.
type cacheEntry struct {
	loss    string
	answer  []float64
	gateSeq int
}

// servable reports whether a cache entry may be released right now.
func (s *Session) servable(e *cacheEntry) bool {
	return e.gateSeq == 0 || s.store == nil || s.durableSeq.Load() >= int64(e.gateSeq)
}

// ledgerView is the point-in-time ledger snapshot cache hits report
// without taking the session mutex.
type ledgerView struct {
	epsRemaining, deltaRemaining float64
	queriesUsed, updatesUsed     int
	updatesMax                   int
}

func newSession(id string, p SessionParams, srv *core.Server, u universe.Universe, created time.Time, oracle string, store persist.Backend, met *svcMetrics, onClose func()) *Session {
	rec := transcript.NewRecorder(srv)
	rec.T.Meta["eps"] = p.Eps
	rec.T.Meta["delta"] = p.Delta
	rec.T.Meta["alpha"] = p.Alpha
	rec.T.Meta["k"] = float64(p.K)
	s := &Session{
		id:      id,
		params:  p,
		u:       u,
		created: created,
		oracle:  oracle,
		store:   store,
		met:     met,
		onClose: onClose,
		rec:     rec,
	}
	s.cache.m = map[string]*cacheEntry{}
	s.touch()
	s.publishViewLocked()
	return s
}

// touch advances the session's LRU clock.
func (s *Session) touch() { s.lastTouch.Store(time.Now().UnixNano()) }

// restoreSession rebuilds a Session around an already-restored recorder
// (server + transcript), carrying over identity and the closed flag. The
// answer cache is rebuilt from the transcript's recorded cache keys, so a
// query already answered before the restart stays a zero-spend repeat
// after it.
func restoreSession(st *persist.SessionState, p SessionParams, rec *transcript.Recorder, u universe.Universe, store persist.Backend, met *svcMetrics, onClose func()) *Session {
	s := &Session{
		id:      st.ID,
		params:  p,
		u:       u,
		created: st.Created,
		oracle:  st.Oracle,
		store:   store,
		met:     met,
		onClose: onClose,
		rec:     rec,
	}
	s.closed.Store(st.Closed)
	s.cache.m = map[string]*cacheEntry{}
	for _, ev := range rec.T.Events {
		if ev.CacheKey == "" {
			continue
		}
		if _, dup := s.cache.m[ev.CacheKey]; dup {
			// First answer wins, exactly as the live insert-on-miss path
			// behaves (a duplicate event can only predate the cache).
			continue
		}
		// gateSeq 0: these events came off disk, so they are durable by
		// construction.
		s.cache.m[ev.CacheKey] = &cacheEntry{loss: ev.Query, answer: ev.Answer}
	}
	s.savedSeq = len(rec.T.Events)
	s.durableSeq.Store(int64(len(rec.T.Events)))
	s.touch()
	s.publishViewLocked()
	return s
}

// publishViewLocked refreshes the lock-free ledger view (called under mu,
// or from a constructor before the session is shared).
func (s *Session) publishViewLocked() {
	srv := s.rec.Srv
	rem := srv.Remaining()
	s.view.Store(&ledgerView{
		epsRemaining:   rem.Eps,
		deltaRemaining: rem.Delta,
		queriesUsed:    srv.Answered(),
		updatesUsed:    srv.Updates(),
		updatesMax:     srv.Params().T,
	})
}

// stateLocked assembles the session's durable state (called under mu).
func (s *Session) stateLocked() (*persist.SessionState, error) {
	raw, err := json.Marshal(s.params)
	if err != nil {
		return nil, fmt.Errorf("service: encoding session params: %w", err)
	}
	return &persist.SessionState{
		ID:         s.id,
		Created:    s.created,
		Closed:     s.closed.Load(),
		Oracle:     s.oracle,
		Params:     raw,
		Core:       s.rec.Srv.Snapshot(),
		Transcript: s.rec.T,
	}, nil
}

// save writes an already-assembled state to the session's state file,
// outside the session mutex (no-op without a store). seq is the state's
// transcript length. A state strictly older than what is on disk is never
// written, forced or not: the newer file is a superset of its events, so
// overwriting it would drop a write-ahead spend whose answer was already
// released. Non-forced (query-path) saves are also skipped at equal seq —
// the spend is durable in the existing file; forced saves (Checkpoint,
// Close, suspend) do write at equal seq because they may change non-event
// state such as the closed flag. Close/suspend can never be the stale
// side: they assemble under mu after flipping closed, so no later query
// can outrun their seq.
func (s *Session) save(st *persist.SessionState, seq int, force bool) error {
	if s.store == nil {
		return nil
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	return s.saveLocked(st, seq, force)
}

// saveLocked is save's body for callers already holding saveMu (evict's
// final fold shares the mutex hold with its log teardown).
func (s *Session) saveLocked(st *persist.SessionState, seq int, force bool) error {
	if seq < s.savedSeq || (!force && seq == s.savedSeq) {
		return nil
	}
	if err := s.store.SaveSession(st); err != nil {
		return fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	s.savedSeq = seq
	s.durableSeq.Store(int64(seq))
	return nil
}

// attachWAL switches the session into WAL mode: wal is its open log, com
// the manager's group committer, and compactRecords/compactBytes the
// thresholds that trigger folding the log into a snapshot. Must be called
// before the session is shared (creation and recovery both do).
func (s *Session) attachWAL(wal *persist.WAL, com *persist.GroupCommitter, compactRecords int, compactBytes int64) {
	s.walMode = true
	s.wal = wal
	s.com = com
	s.compactRecords = compactRecords
	s.compactBytes = compactBytes
	s.walAppendedSeq = s.savedSeq
}

// enqueueWALLocked queues the just-recorded event as a WAL record (called
// under mu, immediately after the recorder appended the event, so pending
// order is event order).
func (s *Session) enqueueWALLocked(spec json.RawMessage, ev *transcript.Event) {
	evCopy := *ev
	s.walPending = append(s.walPending, &persist.WALRecord{
		Kind:  persist.WALEvent,
		Seq:   ev.Index,
		Spec:  spec,
		Event: &evCopy,
	})
}

// appendPendingLocked drains the pending queue into the log file (no
// sync). Caller holds saveMu. Once the log is broken — a failed append may
// have torn the file mid-frame — nothing more is appended: drained records
// are covered by the full-snapshot fallback the caller must take (they are
// all in the in-memory transcript), and on a crash before that fallback
// the torn tail truncates away only records whose answers were never
// released under the write-ahead rule.
func (s *Session) appendPendingLocked() {
	s.mu.Lock()
	pend := s.walPending
	s.walPending = nil
	s.mu.Unlock()
	if s.walBroken || s.wal == nil {
		return
	}
	for _, r := range pend {
		if err := s.wal.Append(r); err != nil {
			s.walBroken = true
			return
		}
		s.walAppendedSeq = r.Seq
	}
}

// walCommit makes every event up to seq durable and advances the durable
// watermark — the WAL-mode replacement for assembling and saving a full
// state. Unless forced, a commit whose seq is already covered returns
// immediately (an overtaking committer or a racing Checkpoint compaction
// already hardened those records — they are never re-appended or
// re-fsynced). On a broken log it falls back to a full snapshot, which
// also tries to heal the log.
func (s *Session) walCommit(seq int, force bool) error {
	s.saveMu.Lock()
	if !force && seq <= s.savedSeq {
		s.saveMu.Unlock()
		return nil
	}
	s.appendPendingLocked()
	if s.walBroken || s.wal == nil {
		defer s.saveMu.Unlock()
		return s.compactLocked()
	}
	appended := s.walAppendedSeq
	wal, com := s.wal, s.com
	// The fsync wait happens outside saveMu: holding it would make every
	// ⊥ append (and every other commit) of this session queue behind one
	// group-commit round trip. Releasing is safe because the appended
	// records are already in the file — a compaction that races the sync
	// may Reset the log, but only after snapshotting a state that contains
	// these very events, which the savedSeq check below picks up.
	s.saveMu.Unlock()
	syncErr := com.Sync(wal)
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	if syncErr != nil {
		if s.savedSeq >= seq {
			// A racing compaction already hardened everything up to seq in
			// snapshot form; the failed log sync cost nothing.
			return nil
		}
		s.walBroken = true
		return s.compactLocked()
	}
	if appended > s.savedSeq {
		s.savedSeq = appended
		s.durableSeq.Store(int64(appended))
	}
	if s.wal != nil && !s.walBroken &&
		(s.wal.Records() >= s.compactRecords || s.wal.Bytes() >= s.compactBytes) {
		// Threshold compaction bounds both replay length and log size; its
		// cost — one full snapshot — lands on this commit but is amortized
		// over compactRecords cheap ones. The commit itself already
		// succeeded, so a compaction failure is not this answer's error:
		// the spend is durable in the log.
		_ = s.compactLocked()
	}
	return nil
}

// walIdleAppend moves ⊥ records into the log without waiting for a sync:
// ⊥ answers spend nothing, so their durability is best-effort (exactly as
// the pre-WAL write path never checkpointed them), but keeping the file —
// not the pending queue — as the buffer bounds memory and keeps the
// compaction thresholds honest. Errors are absorbed: a broken log forces
// the next ⊤ commit into the snapshot fallback.
func (s *Session) walIdleAppend() {
	s.saveMu.Lock()
	s.appendPendingLocked()
	s.saveMu.Unlock()
}

// compactLocked folds the session's current state into the snapshot
// format and truncates the log: the periodic durability "rebase" that
// bounds WAL replay, and the forced-checkpoint path. Caller holds saveMu.
// Pending records are discarded under mu *before* the state is assembled —
// the snapshot is a superset of every one of them — so records covered by
// the snapshot can never also be re-appended to the log (the
// checkpoint-vs-group-commit race). A snapshot written at or above seq
// advances the watermark even when the subsequent log Reset fails; the
// broken flag then keeps routing durable points through snapshots until a
// later Reset heals the file.
func (s *Session) compactLocked() error {
	s.mu.Lock()
	st, err := s.stateLocked()
	seq := len(s.rec.T.Events)
	s.walPending = nil
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.store.SaveSession(st); err != nil {
		return fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	if seq > s.savedSeq {
		s.savedSeq = seq
	}
	s.durableSeq.Store(int64(s.savedSeq))
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Reset(); err != nil {
		s.walBroken = true
		return nil
	}
	s.walBroken = false
	s.walAppendedSeq = seq
	return nil
}

// Checkpoint forces a durable snapshot of the session's current state. It
// fails with ErrNotDurable when the manager has no state directory.
// Checkpointing a closed session rewrites its (final) state and is
// harmless. In WAL mode a forced checkpoint is a compaction: the log is
// folded into the snapshot and truncated, and a ⊤ answer racing this
// checkpoint finds its records already durable instead of fsyncing them a
// second time.
func (s *Session) Checkpoint() error {
	if s.store == nil {
		return ErrNotDurable
	}
	if s.pagedOut.Load() {
		// The eviction fold that set the flag leaves the session durable by
		// construction; the retrying caller checkpoints the paged-in
		// incarnation instead of racing the fold.
		return ErrPagedOut
	}
	if s.walMode {
		s.saveMu.Lock()
		defer s.saveMu.Unlock()
		return s.compactLocked()
	}
	s.mu.Lock()
	st, err := s.stateLocked()
	seq := len(s.rec.T.Events)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.save(st, seq, true)
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Params returns the session's (fully merged) creation parameters.
func (s *Session) Params() SessionParams { return s.params }

// QueryResult is one answered query plus the ledger movement it caused.
type QueryResult struct {
	// Loss is the resolved instance name of the queried loss.
	Loss string `json:"loss"`
	// Answer is the released parameter vector θ̂ʲ.
	Answer []float64 `json:"answer"`
	// Top reports the sparse-vector disposition: true means ⊤ (an oracle
	// call was spent and the hypothesis updated), false means ⊥ (answered
	// from the public hypothesis, no marginal budget).
	Top bool `json:"top"`
	// EpsSpent, DeltaSpent are this query's incremental oracle spend;
	// RhoSpent its zCDP cost when the oracle certifies one.
	EpsSpent   float64 `json:"eps_spent"`
	DeltaSpent float64 `json:"delta_spent"`
	RhoSpent   float64 `json:"rho_spent,omitempty"`
	// EpsRemaining, DeltaRemaining are the unspent budget after this query
	// under the session's accountant.
	EpsRemaining   float64 `json:"eps_remaining"`
	DeltaRemaining float64 `json:"delta_remaining"`
	// QueriesUsed / QueriesMax and UpdatesUsed / UpdatesMax are the ledger
	// counters after this query.
	QueriesUsed int `json:"queries_used"`
	QueriesMax  int `json:"queries_max"`
	UpdatesUsed int `json:"updates_used"`
	UpdatesMax  int `json:"updates_max"`
	// Cached reports the answer was re-released from the session's answer
	// cache: pure post-processing of an already-released answer, spending
	// zero budget and advancing no noise stream. Cached results report the
	// latest published ledger view; they never count against K.
	Cached bool `json:"cached,omitempty"`
}

// cacheGet reads the answer cache (lock-free with respect to the session
// mutex).
func (s *Session) cacheGet(key string) *cacheEntry {
	s.cache.RLock()
	e := s.cache.m[key]
	s.cache.RUnlock()
	return e
}

// hitResult renders a cached entry as a zero-spend result carrying the
// latest published ledger view. Every cache-served answer funnels
// through here, so it is the single point that counts hits.
func (s *Session) hitResult(e *cacheEntry) *QueryResult {
	s.cacheHits.Add(1)
	s.met.hit()
	v := s.view.Load()
	return &QueryResult{
		Loss:           e.loss,
		Answer:         append([]float64(nil), e.answer...),
		Cached:         true,
		EpsRemaining:   v.epsRemaining,
		DeltaRemaining: v.deltaRemaining,
		QueriesUsed:    v.queriesUsed,
		QueriesMax:     s.params.K,
		UpdatesUsed:    v.updatesUsed,
		UpdatesMax:     v.updatesMax,
	}
}

// lookupCached serves spec's canonical key from the answer cache without
// taking the session mutex. It returns (nil, nil) on a miss — including
// an entry whose ⊤ spend is not durable yet, which must take the locked
// path so the release waits behind the write-ahead save — and
// ErrSessionClosed for any query to a closed session, hit or not.
func (s *Session) lookupCached(key string) (*QueryResult, error) {
	if s.pagedOut.Load() {
		return nil, ErrPagedOut
	}
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	e := s.cacheGet(key)
	if e != nil && !s.servable(e) {
		s.met.gate()
	}
	if e == nil || !s.servable(e) {
		return nil, nil
	}
	return s.hitResult(e), nil
}

// answerLocked drives one mechanism query under mu: answers l, records the
// keyed transcript event, caches the released answer, queues the WAL
// record (WAL mode; spec is the query's serialized spec, replayed at
// recovery), and refreshes the ledger view. The caller owns halt/closed
// checks and durability.
func (s *Session) answerLocked(l convex.Loss, key string, spec json.RawMessage) (*QueryResult, error) {
	theta, err := s.rec.AnswerKeyed(l, key)
	if err == core.ErrHalted {
		return nil, ErrBudgetExhausted
	}
	if err != nil {
		return nil, fmt.Errorf("service: query %q: %w", l.Name(), err)
	}
	srv := s.rec.Srv
	ev := s.rec.T.Events[len(s.rec.T.Events)-1]
	if s.walMode {
		// Every event is logged, ⊥ included: a ⊥ answer advances the
		// sparse-vector noise stream, so replay must re-execute it to keep
		// the restored RNG positions — and with them the bit-identity
		// invariant — exact.
		s.enqueueWALLocked(spec, &ev)
	}
	if key != "" {
		// ⊥ answers spend nothing and are releasable immediately; a ⊤
		// answer's entry is gated on its spend reaching disk.
		gate := 0
		if ev.Top && s.store != nil {
			gate = len(s.rec.T.Events)
		}
		s.cache.Lock()
		if _, dup := s.cache.m[key]; !dup {
			s.cache.m[key] = &cacheEntry{loss: l.Name(), answer: ev.Answer, gateSeq: gate}
		}
		s.cache.Unlock()
	}
	if ev.Top {
		s.met.top()
	} else {
		s.met.bottom()
	}
	s.publishViewLocked()
	rem := srv.Remaining()
	return &QueryResult{
		Loss:           l.Name(),
		Answer:         theta,
		Top:            ev.Top,
		EpsSpent:       ev.EpsSpent,
		DeltaSpent:     ev.DeltaSpent,
		RhoSpent:       ev.RhoSpent,
		EpsRemaining:   rem.Eps,
		DeltaRemaining: rem.Delta,
		QueriesUsed:    srv.Answered(),
		QueriesMax:     s.params.K,
		UpdatesUsed:    srv.Updates(),
		UpdatesMax:     srv.Params().T,
	}, nil
}

// Query resolves spec against the loss registry and answers it. A repeat
// of an already-answered canonical query is served from the answer cache:
// zero budget spend, no noise-stream movement, no session mutex — the
// mechanism never sees it, so cached repeats keep working even after the
// budget is exhausted. First-time queries go through the mechanism. Query
// returns ErrSessionClosed after Close and ErrBudgetExhausted once the
// session's K queries or T updates are spent.
func (s *Session) Query(spec convex.Spec) (*QueryResult, error) {
	key, err := convex.CanonicalKey(s.u, spec)
	if err != nil {
		return nil, err
	}
	if res, err := s.lookupCached(key); err != nil || res != nil {
		return res, err
	}
	l, err := convex.Build(s.u, spec)
	if err != nil {
		return nil, err
	}
	var specRaw json.RawMessage
	if s.walMode {
		if specRaw, err = json.Marshal(spec); err != nil {
			return nil, fmt.Errorf("service: encoding query spec: %w", err)
		}
	}
	s.mu.Lock()
	if s.pagedOut.Load() {
		s.mu.Unlock()
		return nil, ErrPagedOut
	}
	if s.closed.Load() {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	// Double-check under the lock: a concurrent miss for the same key may
	// have just answered it. If that answer's spend is not durable yet
	// (its writer is mid-fsync, or its write failed), re-drive the
	// write-ahead commit before releasing the bytes — on success the skip
	// rule makes it a cheap wait behind the in-flight writer, and after a
	// failed write it is the retry that heals the gate.
	if hit := s.cacheGet(key); hit != nil {
		var st *persist.SessionState
		var seq int
		gated := !s.servable(hit)
		if gated && !s.walMode {
			if st, err = s.stateLocked(); err != nil {
				s.mu.Unlock()
				return nil, err
			}
		}
		if gated {
			seq = len(s.rec.T.Events)
		}
		res := s.hitResult(hit)
		s.mu.Unlock()
		if gated {
			if s.walMode {
				err = s.walCommit(seq, false)
			} else {
				err = s.save(st, seq, false)
			}
			if err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	if s.rec.Srv.Halted() {
		s.mu.Unlock()
		return nil, ErrBudgetExhausted
	}
	res, err := s.answerLocked(l, key, specRaw)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	var st *persist.SessionState
	var seq int
	if res.Top && s.store != nil && !s.walMode {
		// Assemble the write-ahead state under mu; the disk write happens
		// after unlock so reads never wait on fsync.
		if st, err = s.stateLocked(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	seq = len(s.rec.T.Events)
	s.mu.Unlock()
	if s.walMode {
		if res.Top {
			// Write-ahead commit: the ⊤ record (and any queued ⊥ records
			// before it) reaches disk through the group committer before
			// the reply is sent.
			if err := s.walCommit(seq, false); err != nil {
				return nil, err
			}
		} else {
			// ⊥ answers spend nothing: append the record without waiting
			// for a sync, exactly as cheap as the pre-WAL path (which did
			// not checkpoint ⊥ answers at all) but keeping the log the
			// single replay source.
			s.walIdleAppend()
		}
		return res, nil
	}
	if st != nil {
		// Write-ahead checkpoint: a ⊤ answer spent budget, so the spend
		// must reach disk before the reply is sent. On failure the reply is
		// an error while the in-memory ledger and transcript keep the spend
		// and the answer (the event stays readable via the transcript
		// endpoint — it is already-released information and trimming it
		// would desynchronize transcript and ledger). The guarantee is
		// about accounting, not secrecy: budget can be over-counted by a
		// failed reply, never spent without being counted.
		if err := s.save(st, seq, false); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// BatchItem is one entry of a batch response: exactly one of Result and
// Error is set. Error strings match what the equivalent sequential Query
// call would have returned.
type BatchItem struct {
	// Result is the item's answer when it succeeded.
	Result *QueryResult `json:"result,omitempty"`
	// Error is the item's failure, empty on success.
	Error string `json:"error,omitempty"`
}

// QueryBatch answers a batch of queries as one operation. The batch is
// partitioned against the answer cache: already-cached items are answered
// read-only, concurrently with the mechanism work; misses are answered in
// deterministic submission order under one session-mutex hold, with one
// write-ahead checkpoint for the whole batch instead of one per ⊤ answer
// (every spend in the batch reaches disk before any of its answers is
// released). An in-batch repeat of an earlier miss is served from the
// cache the miss just filled, so a batch is answer-, budget-, and
// transcript-equivalent to the same specs issued as sequential Query
// calls. Per-item failures (unknown kinds, malformed params, budget
// exhaustion mid-batch) are reported in the item, not as a batch error;
// the returned error is reserved for batch-wide failures (a failed
// checkpoint withholds the whole batch's answers).
func (s *Session) QueryBatch(specs []convex.Spec) ([]BatchItem, error) {
	s.met.batch(len(specs))
	items := make([]BatchItem, len(specs))
	keys := make([]string, len(specs))
	isMiss := make([]bool, len(specs))
	var missIdx []int
	for i, spec := range specs {
		key, err := convex.CanonicalKey(s.u, spec)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		keys[i] = key
		// An entry whose spend is not durable yet counts as a miss here:
		// it must go through the locked phase, whose trailing save gates
		// its release.
		if e := s.cacheGet(key); e == nil || !s.servable(e) {
			if e != nil {
				s.met.gate()
			}
			isMiss[i] = true
			missIdx = append(missIdx, i)
		}
	}
	// Misses run through the mechanism on their own goroutine while the
	// pre-partitioned hits are resolved read-only here; the two sides write
	// disjoint items.
	done := make(chan error, 1)
	go func() { done <- s.answerMisses(specs, keys, missIdx, items) }()
	var pagedErr error
	for i := range specs {
		// Miss items belong to the goroutine above; canonicalization
		// failures (keys[i] == "") already carry their error. Only the
		// pre-partitioned hits are touched here — the two sides write
		// disjoint items.
		if isMiss[i] || keys[i] == "" {
			continue
		}
		res, err := s.lookupCached(keys[i])
		switch {
		case errors.Is(err, ErrPagedOut):
			// Eviction raced the batch: fail the batch as a whole so the
			// manager pages the session back in and retries every item.
			pagedErr = err
		case err != nil:
			items[i].Error = err.Error()
		default:
			items[i].Result = res
		}
	}
	if err := <-done; err != nil {
		return nil, err
	}
	if pagedErr != nil {
		return nil, pagedErr
	}
	return items, nil
}

// answerMisses is QueryBatch's mechanism phase: every non-cached item, in
// submission order, under one mutex hold and one trailing write-ahead
// checkpoint.
func (s *Session) answerMisses(specs []convex.Spec, keys []string, missIdx []int, items []BatchItem) error {
	if len(missIdx) == 0 {
		return nil
	}
	// Build the miss losses before taking the lock: construction
	// enumerates the public universe and needs no session state. One build
	// per distinct canonical key — in-batch duplicates resolve as cache
	// hits below, so building every occurrence would be wasted universe
	// sweeps. A build failure is reported on each occurrence, exactly as
	// the sequential path would report it.
	type built struct {
		loss convex.Loss
		spec json.RawMessage
		err  error
	}
	byKey := make(map[string]built, len(missIdx))
	for _, i := range missIdx {
		if _, done := byKey[keys[i]]; done {
			continue
		}
		l, err := convex.Build(s.u, specs[i])
		b := built{loss: l, err: err}
		if err == nil && s.walMode {
			if b.spec, err = json.Marshal(specs[i]); err != nil {
				b.err = fmt.Errorf("service: encoding query spec: %w", err)
			}
		}
		byKey[keys[i]] = b
	}
	s.mu.Lock()
	if s.pagedOut.Load() {
		s.mu.Unlock()
		return ErrPagedOut
	}
	needSave := false
	for _, i := range missIdx {
		b := byKey[keys[i]]
		if b.err != nil {
			items[i].Error = b.err.Error()
			continue
		}
		if s.closed.Load() {
			items[i].Error = ErrSessionClosed.Error()
			continue
		}
		// An earlier miss in this batch (or a concurrent request) may have
		// been this item's first occurrence; serve the repeat from the
		// cache it filled, exactly as a sequential Query would. An entry
		// whose spend is not durable yet may be used *inside* the batch —
		// its release is gated by the trailing save below.
		if hit := s.cacheGet(keys[i]); hit != nil {
			if !s.servable(hit) {
				needSave = true
			}
			items[i].Result = s.hitResult(hit)
			continue
		}
		if s.rec.Srv.Halted() {
			items[i].Error = ErrBudgetExhausted.Error()
			continue
		}
		res, err := s.answerLocked(b.loss, keys[i], b.spec)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		if res.Top {
			needSave = true
		}
		items[i].Result = res
	}
	var st *persist.SessionState
	var seq int
	var stErr error
	if needSave && s.store != nil && !s.walMode {
		st, stErr = s.stateLocked()
	}
	seq = len(s.rec.T.Events)
	s.mu.Unlock()
	if stErr != nil {
		return stErr
	}
	if s.walMode {
		// One group-committed write-ahead commit covers every ⊤ in the
		// batch; a ⊥-only batch just drains its records into the log.
		if needSave {
			return s.walCommit(seq, false)
		}
		s.walIdleAppend()
		return nil
	}
	if st != nil {
		return s.save(st, seq, false)
	}
	return nil
}

// SessionStatus is a point-in-time snapshot of a session's ledger.
type SessionStatus struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	Closed  bool      `json:"closed"`
	// Exhausted reports that the mechanism has halted (K queries answered
	// or T updates spent); further queries are rejected.
	Exhausted bool `json:"exhausted"`

	QueriesUsed int `json:"queries_used"`
	QueriesMax  int `json:"queries_max"`
	UpdatesUsed int `json:"updates_used"`
	UpdatesMax  int `json:"updates_max"`

	// CacheHits counts answers this session served from its answer cache
	// (zero-spend repeats; they never count against QueriesUsed).
	CacheHits int64 `json:"cache_hits"`

	// Accountant is the accounting mode composing the session's spends.
	Accountant string `json:"accountant"`

	// Engine is the resolved evaluation engine ("dense" or "factored").
	Engine string `json:"engine"`

	// EpsBudget, DeltaBudget is the session's total budget; EpsSpent,
	// DeltaSpent the mechanism's current privacy bound for the interaction
	// so far (the up-front sparse-vector slice plus composed oracle calls);
	// EpsRemaining, DeltaRemaining the unspent difference, clamped at zero.
	EpsBudget      float64 `json:"eps_budget"`
	DeltaBudget    float64 `json:"delta_budget"`
	EpsSpent       float64 `json:"eps_spent"`
	DeltaSpent     float64 `json:"delta_spent"`
	EpsRemaining   float64 `json:"eps_remaining"`
	DeltaRemaining float64 `json:"delta_remaining"`

	// Eps0, Delta0 is the per-oracle-call budget of the composition
	// schedule — what one more ⊤ answer would cost; Rho0 the per-call zCDP
	// cost when the oracle certifies one.
	Eps0   float64 `json:"eps0"`
	Delta0 float64 `json:"delta0"`
	Rho0   float64 `json:"rho0,omitempty"`
}

// Status returns the session's current ledger snapshot.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	srv := s.rec.Srv
	p := srv.Params()
	priv := srv.Privacy()
	rem := srv.Remaining()
	return SessionStatus{
		ID:             s.id,
		Created:        s.created,
		Closed:         s.closed.Load(),
		Exhausted:      srv.Halted(),
		QueriesUsed:    srv.Answered(),
		QueriesMax:     s.params.K,
		UpdatesUsed:    srv.Updates(),
		UpdatesMax:     p.T,
		CacheHits:      s.cacheHits.Load(),
		Accountant:     srv.AccountantName(),
		Engine:         srv.EngineName(),
		EpsBudget:      s.params.Eps,
		DeltaBudget:    s.params.Delta,
		EpsSpent:       priv.Eps,
		DeltaSpent:     priv.Delta,
		EpsRemaining:   rem.Eps,
		DeltaRemaining: rem.Delta,
		Eps0:           p.Eps0,
		Delta0:         p.Delta0,
		Rho0:           srv.CallCost().Rho,
	}
}

// TranscriptRecord is the serialized audit artifact of a session: the full
// event transcript plus the cumulative spend it implies.
type TranscriptRecord struct {
	ID         string                 `json:"id"`
	Transcript *transcript.Transcript `json:"transcript"`
	// Tops counts budget-spending (⊤) exchanges.
	Tops int `json:"tops"`
	// CumEps, CumDelta is the cumulative oracle spend over the recorded
	// events (basic composition); EpsBound, DeltaBound the mechanism's
	// tighter total guarantee including the sparse-vector slice.
	CumEps     float64 `json:"cum_eps"`
	CumDelta   float64 `json:"cum_delta"`
	EpsBound   float64 `json:"eps_bound"`
	DeltaBound float64 `json:"delta_bound"`
}

// TranscriptJSON serializes the session's transcript record. Marshaling
// happens under the session lock, so the snapshot is consistent even while
// other goroutines keep querying.
func (s *Session) TranscriptJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eps, delta := s.rec.T.SpentOracle()
	priv := s.rec.Srv.Privacy()
	return json.Marshal(TranscriptRecord{
		ID:         s.id,
		Transcript: s.rec.T,
		Tops:       s.rec.T.Tops(),
		CumEps:     eps,
		CumDelta:   delta,
		EpsBound:   priv.Eps,
		DeltaBound: priv.Delta,
	})
}

// Close permanently stops the session and releases its manager slot.
// Subsequent queries fail with ErrSessionClosed; status and transcript
// reads keep working (subject to the manager's closed-session retention
// limit). On a durable manager the final state is checkpointed with the
// closed flag, so the session stays permanently closed across restarts;
// a checkpoint failure is reported but the session closes regardless.
// Closing twice returns ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.pagedOut.Load() {
		s.mu.Unlock()
		return ErrPagedOut
	}
	if s.closed.Load() {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.closed.Store(true)
	var st *persist.SessionState
	var seq int
	var stErr error
	if s.walMode {
		// A close record makes closed-ness durable at WAL-record cost; the
		// compaction below then folds the final state into the snapshot.
		s.walPending = append(s.walPending, &persist.WALRecord{Kind: persist.WALClose, Seq: len(s.rec.T.Events)})
	} else if s.store != nil {
		st, stErr = s.stateLocked()
		seq = len(s.rec.T.Events)
	}
	cb := s.onClose
	s.onClose = nil
	s.mu.Unlock()
	saveErr := stErr
	if s.walMode {
		// Commit the close record first (forced: its seq equals the last
		// event's, which may already be durable), then fold the final
		// state into the snapshot and drop the log — a closed session
		// never writes again. The log is removed only after a successful
		// compaction; on failure it stays, and recovery replays the close
		// record instead.
		saveErr = s.walCommit(0, true)
		s.saveMu.Lock()
		if err := s.compactLocked(); err == nil && s.wal != nil {
			_ = s.wal.Close()
			_ = s.store.RemoveWAL(s.id)
			s.wal = nil
		} else if saveErr == nil {
			saveErr = err
		}
		s.saveMu.Unlock()
	} else if st != nil {
		saveErr = s.save(st, seq, true)
	}
	if cb != nil {
		cb()
	}
	return saveErr
}

// suspend checkpoints a live session for a graceful restart and stops
// serving it, without recording a close: the state file keeps Closed=false,
// so the next manager over the same state directory resumes the session
// exactly where it stopped. Already-closed sessions are left alone.
func (s *Session) suspend() {
	if s.walMode {
		// Fold the log into a Closed=false snapshot *before* flipping the
		// closed flag — compaction reads the flag, and the state file must
		// say "live" for the next start to resume the session. A ⊤ answer
		// racing this compaction commits its own records through the log;
		// the file is left in place either way, so recovery replays
		// whatever the compaction missed.
		s.saveMu.Lock()
		_ = s.compactLocked()
		s.saveMu.Unlock()
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			return
		}
		s.closed.Store(true)
		cb := s.onClose
		s.onClose = nil
		s.mu.Unlock()
		if cb != nil {
			cb()
		}
		return
	}
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return
	}
	// The suspend state is assembled *before* the closed flag flips, so
	// the state file keeps Closed=false and the next start resumes the
	// session live.
	var st *persist.SessionState
	var seq int
	if s.store != nil {
		st, _ = s.stateLocked()
		seq = len(s.rec.T.Events)
	}
	s.closed.Store(true)
	cb := s.onClose
	s.onClose = nil
	s.mu.Unlock()
	if st != nil {
		// Best-effort: shutdown must not wedge on a full disk; the last
		// ⊤-answer checkpoint is still on disk, so at worst a ⊥-only tail
		// of the interaction is lost.
		_ = s.save(st, seq, true)
	}
	if cb != nil {
		cb()
	}
}
