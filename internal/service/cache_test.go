package service

import (
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/convex"
)

// TestCacheHitGolden is the acceptance invariant of the answer cache, per
// accountant: a repeat of an answered query is served with a byte-identical
// answer while spending zero budget and advancing no randomness — the
// complete mechanism state (noise-stream positions, sparse-vector run, MW
// weights, accountant ledger) is bit-identical before and after the
// repeat. The invariant must survive snapshot → restart → repeat: the
// restored session serves the same bytes from the transcript-rebuilt cache.
func TestCacheHitGolden(t *testing.T) {
	for _, acct := range []string{"basic", "advanced", "zcdp"} {
		t.Run(acct, func(t *testing.T) {
			defaults := SessionParams{
				Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 10, TBudget: 6,
				Accountant: acct,
			}
			dir := t.TempDir()
			m1 := durableManager(t, dir, 1, 9, defaults)
			s1, err := m1.CreateSession(SessionParams{})
			if err != nil {
				t.Fatal(err)
			}
			// Answer a mixed stream so the cache holds ⊥ and (with the
			// fixed seed) at least one ⊤ answer.
			specs := mixedSpecs(4)
			firsts := make([]*QueryResult, len(specs))
			tops := 0
			for i, q := range specs {
				if firsts[i], err = s1.Query(q); err != nil {
					t.Fatal(err)
				}
				if firsts[i].Top {
					tops++
				}
			}
			if tops == 0 {
				t.Fatal("fixture produced no ⊤ answers; the zero-spend claim would be vacuous")
			}

			// The golden check: repeats change nothing. Snapshot the entire
			// mechanism state — including every noise-stream position — and
			// require it bit-identical after the repeats.
			before := s1.rec.Srv.Snapshot()
			budgetBefore := s1.rec.Srv.Remaining()
			eventsBefore := len(s1.rec.T.Events)
			for i, q := range specs {
				res, err := s1.Query(q)
				if err != nil {
					t.Fatalf("repeat %d: %v", i, err)
				}
				if !res.Cached {
					t.Fatalf("repeat %d not served from cache: %+v", i, res)
				}
				if res.EpsSpent != 0 || res.DeltaSpent != 0 || res.RhoSpent != 0 {
					t.Fatalf("repeat %d spent (%v, %v, %v), want zero", i, res.EpsSpent, res.DeltaSpent, res.RhoSpent)
				}
				answersEqual(t, "repeat", firsts[i].Answer, res.Answer)
			}
			after := s1.rec.Srv.Snapshot()
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("repeat queries moved mechanism state:\nbefore %+v\nafter  %+v", before, after)
			}
			if after.Src != before.Src {
				t.Fatalf("repeat queries advanced the oracle noise stream: %+v → %+v", before.Src, after.Src)
			}
			if got := s1.rec.Srv.Remaining(); got != budgetBefore {
				t.Fatalf("repeat queries moved the budget: %+v → %+v", budgetBefore, got)
			}
			if got := len(s1.rec.T.Events); got != eventsBefore {
				t.Fatalf("repeat queries appended %d transcript events", got-eventsBefore)
			}

			// Survives snapshot → restart → repeat: the restored session
			// rebuilds the cache from the transcript and re-releases the
			// same bytes, still spending nothing.
			m1.Shutdown()
			m2 := durableManager(t, dir, 1, 777, defaults)
			defer m2.Shutdown()
			s2, err := m2.Session(s1.ID())
			if err != nil {
				t.Fatal(err)
			}
			restoredBefore := s2.rec.Srv.Snapshot()
			for i, q := range specs {
				res, err := s2.Query(q)
				if err != nil {
					t.Fatalf("post-restart repeat %d: %v", i, err)
				}
				if !res.Cached || res.EpsSpent != 0 {
					t.Fatalf("post-restart repeat %d: %+v, want zero-spend cache hit", i, res)
				}
				answersEqual(t, "post-restart repeat", firsts[i].Answer, res.Answer)
			}
			if restoredAfter := s2.rec.Srv.Snapshot(); !reflect.DeepEqual(restoredBefore, restoredAfter) {
				t.Fatalf("post-restart repeats moved mechanism state")
			}
		})
	}
}

// answersEqual compares released parameter vectors bit-for-bit.
func answersEqual(t *testing.T, stage string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: answer lengths %d vs %d", stage, len(want), len(got))
	}
	for j := range want {
		if want[j] != got[j] {
			t.Fatalf("%s: answer[%d] = %x, want %x", stage, j, got[j], want[j])
		}
	}
}

// TestCacheKeyNormalizationServesHits checks the canonicalization is live
// end to end: parameter reordering and explicit defaults hit the cache
// entry the original spelling created.
func TestCacheKeyNormalizationServesHits(t *testing.T) {
	m := testManager(t, Limits{})
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Query(convex.Spec{Kind: "logistic", Params: json.RawMessage(`{"temp":0.5}`)})
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range []string{`{}`, `{"margin":0,"temp":0.5}`, `{"temp":0.5,"margin":0}`} {
		res, err := s.Query(convex.Spec{Kind: "logistic", Params: json.RawMessage(alt)})
		if err != nil {
			t.Fatalf("%s: %v", alt, err)
		}
		if !res.Cached {
			t.Fatalf("%s: missed the cache", alt)
		}
		answersEqual(t, alt, first.Answer, res.Answer)
	}
	// A genuinely different instance must not hit.
	res, err := s.Query(convex.Spec{Kind: "logistic", Params: json.RawMessage(`{"temp":0.7}`)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("distinct params served from cache")
	}
}

// TestConcurrentCacheHitsDuringMiss runs cache-hit readers concurrently
// with in-flight misses and status reads (exercised under -race in CI):
// hits are lock-free, so they must stay correct — and zero-spend — while
// the mechanism is mid-answer on the same session.
func TestConcurrentCacheHitsDuringMiss(t *testing.T) {
	m := testManager(t, Limits{})
	s, err := m.CreateSession(SessionParams{K: 40})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := s.Query(countingSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Misses: distinct squared/logistic queries keep the session mutex busy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := s.Query(distinctSpec(i)); err != nil && !errors.Is(err, ErrBudgetExhausted) {
				t.Errorf("miss %d: %v", i, err)
				return
			}
		}
	}()
	// Hits: many readers repeating the cached query while misses run.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := s.Query(countingSpec(0))
				if err != nil {
					t.Errorf("hit: %v", err)
					return
				}
				if !res.Cached || res.EpsSpent != 0 {
					t.Errorf("hit: %+v, want zero-spend cached", res)
					return
				}
				answersEqual(t, "concurrent hit", seed.Answer, res.Answer)
			}
		}()
	}
	// Status readers must also never block on or race the query path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.Status()
		}
	}()
	wg.Wait()
}

// TestCacheGateHoldsUntilDurable pins the write-ahead rule on the cache
// path: a ⊤ answer whose checkpoint failed is not servable — not to its
// asker, not as a cache hit — until a later save lands; the gated repeat
// re-drives the save and heals once the store recovers.
func TestCacheGateHoldsUntilDurable(t *testing.T) {
	dir := t.TempDir()
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 10, TBudget: 6}
	m := durableManager(t, dir, 1, 9, defaults)
	defer m.Shutdown()
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	// Break the store: every subsequent checkpoint write fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	var topSpec convex.Spec
	found := false
	for _, q := range mixedSpecs(8) {
		_, err := s.Query(q)
		if err == nil {
			continue // ⊥ answers need no durability
		}
		if !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("query error = %v, want ErrCheckpoint", err)
		}
		topSpec, found = q, true
		break
	}
	if !found {
		t.Fatal("fixture produced no ⊤ answer; gate test is vacuous")
	}
	// The repeat must NOT be served from the cache while the spend is not
	// durable: the gated entry routes it through the locked path, whose
	// save retry fails against the broken store.
	if _, err := s.Query(topSpec); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("gated repeat error = %v, want ErrCheckpoint (answer withheld until durable)", err)
	}
	// Repair the store: the next repeat re-drives the save, the spend
	// lands, and the cached answer is released.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(topSpec)
	if err != nil {
		t.Fatalf("repeat after repair: %v", err)
	}
	if !res.Cached || res.EpsSpent != 0 {
		t.Fatalf("repeat after repair = %+v, want zero-spend cache hit", res)
	}
	// And now it is lock-free servable.
	if r2, err := s.Query(topSpec); err != nil || !r2.Cached {
		t.Fatalf("healed entry not served: %+v, %v", r2, err)
	}
}
