package service

// wal_test.go covers the WAL-mode write path at the service layer: golden
// bit-identity of recovery-by-replay per accountant, torn-tail truncation
// after a byte-level corruption, compaction round-trips, the
// checkpoint-vs-group-commit race, WAL-off replay of leftover logs, and
// close durability through the close record.

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/persist"
	"repro/internal/sample"
)

// walManager builds a durable manager in WAL mode over dir. compactEvery 0
// takes the production default (256), i.e. effectively no mid-test
// compaction for short streams.
func walManager(t *testing.T, dir string, dataSeed, srcSeed int64, defaults SessionParams, compactEvery int) *Manager {
	t.Helper()
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Data:         durableData(t, dataSeed),
		Source:       sample.New(srcSeed),
		Defaults:     defaults,
		Store:        st,
		WAL:          true,
		CompactEvery: compactEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// walFile is the on-disk path of a session's log (mirrors the persist
// layout documented on Store.OpenWAL).
func walFile(dir, id string) string {
	return filepath.Join(dir, "session-"+id+".wal")
}

// TestWALGoldenContinuation is the acceptance invariant for the WAL write
// path, per accountant: a WAL-mode session whose manager is abandoned
// without any shutdown (a crash — the log tail was never folded into a
// snapshot) must, after recovery-by-replay, answer the remaining query
// sequence bit-identically to an uninterrupted in-memory session — answers,
// ⊥/⊤ pattern, budget spend, transcript.
func TestWALGoldenContinuation(t *testing.T) {
	for _, acct := range []string{"basic", "advanced", "zcdp"} {
		t.Run(acct, func(t *testing.T) {
			defaults := SessionParams{
				Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 12, TBudget: 6,
				Accountant: acct,
			}
			specs := mixedSpecs(12)
			const cut = 5

			ref := durableManager(t, "", 1, 9, defaults)
			defer ref.Shutdown()
			refSess, err := ref.CreateSession(SessionParams{})
			if err != nil {
				t.Fatal(err)
			}
			refResults := make([]*QueryResult, len(specs))
			for i, q := range specs {
				if refResults[i], err = refSess.Query(q); err != nil {
					t.Fatalf("reference query %d: %v", i, err)
				}
			}

			dir := t.TempDir()
			m1 := walManager(t, dir, 1, 9, defaults, 0)
			s1, err := m1.CreateSession(SessionParams{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < cut; i++ {
				res, err := s1.Query(specs[i])
				if err != nil {
					t.Fatalf("pre-crash query %d: %v", i, err)
				}
				sameResult(t, "pre-crash", refResults[i], res)
			}
			// No Shutdown: the manager is abandoned with its whole event
			// history still in the log. Recovery must replay it.
			if len(loadState(t, m1, s1.ID()).Transcript.Events) != 0 {
				t.Fatal("fixture compacted before the crash; replay test is vacuous")
			}

			m2 := walManager(t, dir, 1, 777, defaults, 0)
			defer m2.Shutdown()
			s2, err := m2.Session(s1.ID())
			if err != nil {
				t.Fatalf("recovered session not found: %v", err)
			}
			wantUsed := 0
			for i := 0; i < cut; i++ {
				if !refResults[i].Cached {
					wantUsed++
				}
			}
			if got := s2.Status(); got.QueriesUsed != wantUsed || got.Accountant != acct {
				t.Fatalf("recovered status %+v, want %d queries used", got, wantUsed)
			}
			for i := cut; i < len(specs); i++ {
				res, err := s2.Query(specs[i])
				if err != nil {
					t.Fatalf("post-crash query %d: %v", i, err)
				}
				sameResult(t, "post-crash", refResults[i], res)
			}
			refTr, err := refSess.TranscriptJSON()
			if err != nil {
				t.Fatal(err)
			}
			gotTr, err := s2.TranscriptJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(refTr) != string(gotTr) {
				t.Fatalf("transcripts differ:\n%s\n%s", refTr, gotTr)
			}
		})
	}
}

// TestWALTornTailRecovery corrupts the last bytes of a session's log — a
// torn write at crash — and checks recovery truncates to the clean prefix
// and the session continues from there.
func TestWALTornTailRecovery(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 12, TBudget: 6}
	dir := t.TempDir()
	m1 := walManager(t, dir, 1, 9, defaults, 0)
	s1, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := s1.Query(distinctSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon m1, then tear the tail: cut into the last record's frame.
	path := walFile(dir, s1.ID())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := walManager(t, dir, 1, 777, defaults, 0)
	defer m2.Shutdown()
	s2, err := m2.Session(s1.ID())
	if err != nil {
		t.Fatalf("recovered session not found: %v", err)
	}
	// Exactly the torn record is gone; the clean prefix survived.
	if got := s2.Status().QueriesUsed; got != n-1 {
		t.Fatalf("recovered %d queries, want %d (clean prefix)", got, n-1)
	}
	if _, err := s2.Query(distinctSpec(n + 1)); err != nil {
		t.Fatalf("recovered session cannot continue: %v", err)
	}
}

// TestWALCompactionRoundTrip drives a session past several compaction
// thresholds and checks (a) the log actually folded into the snapshot
// mid-stream, and (b) a crash after that recovers snapshot + WAL tail into
// a session whose remaining answers are bit-identical to an uninterrupted
// run.
func TestWALCompactionRoundTrip(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 16, TBudget: 6}
	specs := mixedSpecs(16)
	const cut = 12

	ref := durableManager(t, "", 1, 9, defaults)
	defer ref.Shutdown()
	refSess, err := ref.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	refResults := make([]*QueryResult, len(specs))
	for i, q := range specs {
		if refResults[i], err = refSess.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	m1 := walManager(t, dir, 1, 9, defaults, 3)
	s1, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		if _, err := s1.Query(specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	snapEvents := len(loadState(t, m1, s1.ID()).Transcript.Events)
	if snapEvents == 0 {
		t.Fatal("no compaction happened; round-trip test is vacuous")
	}
	// Crash: snapshot holds a prefix, the log holds the tail past it.

	m2 := walManager(t, dir, 1, 777, defaults, 3)
	defer m2.Shutdown()
	s2, err := m2.Session(s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	for i := cut; i < len(specs); i++ {
		res, err := s2.Query(specs[i])
		if err != nil {
			t.Fatalf("post-crash query %d: %v", i, err)
		}
		sameResult(t, "post-compaction-crash", refResults[i], res)
	}
}

// TestWALCheckpointRaceNoDoubleCommit is the regression test for the
// checkpoint-vs-group-commit race: forced Checkpoint calls interleaved
// with live queries must never re-append records the snapshot already
// holds or commit a record twice. The log must stay a strictly increasing
// run of sequence numbers, and recovery must see every answered query.
func TestWALCheckpointRaceNoDoubleCommit(t *testing.T) {
	defaults := SessionParams{Eps: 2, Delta: 1e-6, Alpha: 0.1, K: 40, TBudget: 8}
	dir := t.TempDir()
	m1 := walManager(t, dir, 1, 9, defaults, 0)
	s1, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// Hammer forced checkpoints while the query loop runs: each one
		// compacts the log and must clear the pending queue it absorbed.
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				if err := s1.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := s1.Query(distinctSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	// Abandon m1 and inspect the files directly.
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.LoadWAL(s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	for _, r := range recs {
		if r.Seq <= last {
			t.Fatalf("wal sequence not strictly increasing: %d after %d (double commit)", r.Seq, last)
		}
		last = r.Seq
	}

	m2 := walManager(t, dir, 1, 777, defaults, 0)
	defer m2.Shutdown()
	s2, err := m2.Session(s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Status().QueriesUsed; got != n {
		t.Fatalf("recovered %d queries, want %d", got, n)
	}
}

// TestWALModeOffReplaysLeftoverLog checks the -wal flag can be toggled off
// between restarts without stranding records: a snapshot-mode manager still
// replays a leftover log and folds it away.
func TestWALModeOffReplaysLeftoverLog(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 12, TBudget: 6}
	dir := t.TempDir()
	m1 := walManager(t, dir, 1, 9, defaults, 0)
	s1, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := s1.Query(distinctSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash, then restart with WAL off.
	m2 := durableManager(t, dir, 1, 777, defaults)
	defer m2.Shutdown()
	s2, err := m2.Session(s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Status().QueriesUsed; got != n {
		t.Fatalf("recovered %d queries, want %d", got, n)
	}
	if m2.cfg.Store.HasWAL(s1.ID()) {
		t.Fatal("leftover wal not folded away by a snapshot-mode manager")
	}
	if _, err := s2.Query(distinctSpec(n + 1)); err != nil {
		t.Fatalf("recovered session cannot continue: %v", err)
	}
}

// TestWALCloseDurability checks closing a WAL-mode session compacts and
// removes its log, persists closedness across a crash, and that a close
// record left in a log (final compaction never ran) still closes the
// session at recovery.
func TestWALCloseDurability(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 8, TBudget: 6}
	dir := t.TempDir()
	m1 := walManager(t, dir, 1, 9, defaults, 0)
	s1, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Query(countingSpec(0)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if m1.cfg.Store.HasWAL(s1.ID()) {
		t.Fatal("close left the wal behind")
	}

	// Second session: closed purely via a close record, as when the final
	// compaction never made it to disk.
	s2, err := m1.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Query(countingSpec(0)); err != nil {
		t.Fatal(err)
	}
	events := len(loadState(t, m1, s2.ID()).Transcript.Events)
	// Abandon m1 and splice a close record onto s2's log.
	w, err := m1.cfg.Store.OpenWAL(s2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&persist.WALRecord{Kind: persist.WALClose, Seq: events}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	m2 := walManager(t, dir, 1, 777, defaults, 0)
	defer m2.Shutdown()
	for _, id := range []string{s1.ID(), s2.ID()} {
		s, err := m2.Session(id)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Status().Closed {
			t.Fatalf("session %s not closed after recovery", id)
		}
		if _, err := s.Query(countingSpec(1)); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("query on recovered closed session %s: %v", id, err)
		}
	}
	if m2.OpenSessions() != 0 {
		t.Fatalf("open sessions after recovery = %d, want 0", m2.OpenSessions())
	}
}

// TestWALRequiresStore checks the configuration guard and the healthz
// surface of WAL mode.
func TestWALRequiresStore(t *testing.T) {
	if _, err := New(Config{
		Data:   durableData(t, 1),
		Source: sample.New(9),
		WAL:    true,
	}); err == nil || !strings.Contains(err.Error(), "state directory") {
		t.Fatalf("WAL without store: %v", err)
	}

	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 5, TBudget: 6}
	m := walManager(t, t.TempDir(), 1, 9, defaults, 0)
	defer m.Shutdown()
	if !m.WALMode() {
		t.Fatal("WALMode() false on a WAL manager")
	}
	rr := httptest.NewRecorder()
	NewHandler(m).ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if !strings.Contains(rr.Body.String(), `"wal": true`) {
		t.Fatalf("healthz on WAL server: %s", rr.Body.String())
	}
}

// TestWALCommitCompactionHammer is the -race stress for the commit path:
// several sessions drive queries (appends + group commits) while a
// per-session goroutine hammers forced checkpoints, with CompactEvery=2 so
// compaction — snapshot rewrite plus WAL truncate-and-reheader — fires on
// nearly every commit, all through one shared group committer. The
// sessions must answer every query, and a post-abandon recovery must
// restore each with its full ledger.
func TestWALCommitCompactionHammer(t *testing.T) {
	defaults := SessionParams{Eps: 2, Delta: 1e-6, Alpha: 0.1, K: 60, TBudget: 8}
	dir := t.TempDir()
	m1 := walManager(t, dir, 1, 9, defaults, 2)

	const nSess, n = 3, 16
	sessions := make([]*Session, nSess)
	var err error
	for i := range sessions {
		if sessions[i], err = m1.CreateSession(SessionParams{}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, s := range sessions {
		done := make(chan struct{})
		wg.Add(2)
		go func(s *Session) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					if err := s.Checkpoint(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(s)
		go func(s *Session) {
			defer wg.Done()
			defer close(done)
			for i := 0; i < n; i++ {
				if _, err := s.Query(distinctSpec(i)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.TranscriptJSON(); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Abandon m1 (no shutdown: a crash) and recover.
	m2 := walManager(t, dir, 1, 10, defaults, 2)
	defer m2.Shutdown()
	for _, s := range sessions {
		r, err := m2.Session(s.ID())
		if err != nil {
			t.Fatalf("session %s not recovered: %v", s.ID(), err)
		}
		if got := r.Status().QueriesUsed; got != n {
			t.Errorf("session %s recovered with %d queries, want %d", s.ID(), got, n)
		}
	}
}
