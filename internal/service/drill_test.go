package service_test

// drill_test.go is the chaos-drill gate at the service layer: it runs the
// fault/drill harness — enumerate the WAL write path's fault points on a
// clean run, then replay seeded crash schedules — and fails on any
// persistence-invariant violation. It lives in the external test package
// because the harness itself imports service.
//
// The default matrix stays small so `go test ./...` is fast; CI's chaos
// job widens it through PMWCM_DRILL_SCHEDULES (and can move the seed base
// with PMWCM_DRILL_SEED — any failure reproduces from the schedule seed
// alone).

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/fault/drill"
)

// drillEnvInt reads an integer knob from the environment.
func drillEnvInt(t *testing.T, name string, def int) int {
	t.Helper()
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("%s = %q: want a positive integer", name, v)
	}
	return n
}

func TestChaosDrillMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill matrix skipped in -short mode")
	}
	schedules := drillEnvInt(t, "PMWCM_DRILL_SCHEDULES", 8)
	seed := int64(drillEnvInt(t, "PMWCM_DRILL_SEED", 1))

	rep, err := drill.Run(drill.Options{}, seed, schedules)
	if err != nil {
		t.Fatal(err)
	}
	// The clean run must expose a real fault surface: the issue's floor is
	// 20 distinct write-path points; a collapse below it means the seam
	// silently stopped covering the write path.
	if rep.WritePoints < 20 {
		t.Fatalf("clean run enumerated %d write-path fault points, want >= 20 (window %d)", rep.WritePoints, rep.Window)
	}

	fired, crashed := 0, 0
	for _, r := range rep.Results {
		if r.Failure != "" {
			t.Errorf("schedule seed=%d fault=%s (fired=%d crashed=%v released=%d tops=%d): %s",
				r.Seed, r.Fault, r.Fired, r.Crashed, r.Released, r.TopsReleased, r.Failure)
		}
		if r.Fired > 0 {
			fired++
		}
		if r.Crashed {
			crashed++
		}
	}
	if fired == 0 {
		t.Errorf("no schedule's fault fired: window %d is mis-sized", rep.Window)
	}
	t.Logf("drill: window=%d write_points=%d schedules=%d fired=%d crashed=%d failures=%d",
		rep.Window, rep.WritePoints, schedules, fired, crashed, rep.Failures)
}
