// Package service hosts the paper's interactive protocol as a long-running,
// concurrent query-serving subsystem.
//
// The mechanism of the paper is inherently online: an analyst adaptively
// submits convex-minimization queries against long-lived private state
// (Figure 1's accuracy game), yet a core.Server is a single sequential
// interaction. This package adds the operational layer between the two: a
// Manager owns the private dataset and hosts many concurrent analyst
// sessions, each wrapping one core.Server behind its own mutex with a
// privacy-budget ledger, a query counter, and a transcript recorder.
// Sessions expose create / query / status / transcript / close operations;
// queries name losses from the internal/convex registry (kind + JSON
// parameters), so a session is drivable entirely from serialized data — the
// HTTP front end in httpapi.go is a thin JSON codec over this API.
//
// Budget semantics: a session is created with an (ε, δ) budget, an accuracy
// target α, and a query cap K. Every answer consumes from the ledger the
// way Figure 3 prescribes — ⊥ answers are free beyond the up-front
// sparse-vector slice, ⊤ answers spend one oracle call — and once the K-th
// query is answered (or the mechanism's T update budget is exhausted) the
// session rejects further queries with ErrBudgetExhausted. Closing a
// session or shutting the manager down is permanent; closed sessions keep
// serving status and transcript reads so audits survive the session.
//
// The read path exploits that a released answer is public information:
// each session caches every answer under its query's canonical spec key
// (convex.CanonicalKey), and a repeat of the same canonical query is
// re-released from the cache as pure post-processing — zero budget, no
// noise-stream movement, no transcript growth, no K consumption, lock-free
// with respect to the session mutex, and still working after the budget is
// exhausted. Session.QueryBatch (and the queries:batch endpoint) answers
// many specs per round trip: cache hits resolve read-only and concurrently,
// misses run in deterministic submission order with one write-ahead
// checkpoint per batch, and the result is answer-, budget-, and
// transcript-equivalent to sequential Query calls.
//
// How spends compose is per-session: SessionParams.Accountant names a
// strategy from the internal/mech registry ("advanced" DRV10 by default;
// "zcdp" composes Gaussian-noise oracle calls in ρ and sustains a larger
// update horizon from the same budget). Status reports the mode, the
// composed spend so far, and the remaining budget.
//
// Durability is opt-in via Config.Store (internal/persist): sessions then
// checkpoint their complete state — mechanism snapshot, privacy ledger,
// transcript — on creation, every ⊤ answer (write-ahead, before the answer
// is released), forced Checkpoint calls, close, and graceful shutdown. A
// manager constructed over the same state directory and dataset recovers
// every stored session: live ones continue the interaction bit-identically
// to an uninterrupted run, closed ones remain readable for audits.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/sample"
	"repro/internal/transcript"
	"repro/internal/universe"
	"repro/internal/xeval"
)

// Typed failures the API distinguishes. Callers match with errors.Is.
var (
	// ErrSessionNotFound: the session id is unknown.
	ErrSessionNotFound = errors.New("service: session not found")
	// ErrSessionClosed: the session exists but was closed.
	ErrSessionClosed = errors.New("service: session closed")
	// ErrBudgetExhausted: the session's K queries or T updates are spent.
	ErrBudgetExhausted = errors.New("service: session budget exhausted")
	// ErrTooManySessions: the manager's open-session limit is reached.
	ErrTooManySessions = errors.New("service: session limit reached")
	// ErrSessionExists: a caller-chosen session id collides with a live,
	// paged-out, or retained-closed session.
	ErrSessionExists = errors.New("service: session already exists")
	// ErrShuttingDown: the manager has been shut down.
	ErrShuttingDown = errors.New("service: manager is shut down")
	// ErrNotDurable: a snapshot was requested but the manager has no state
	// directory.
	ErrNotDurable = errors.New("service: manager has no state directory")
	// ErrCheckpoint: writing a session's durable state failed. On a ⊤
	// answer the reply becomes this error while the in-memory ledger and
	// transcript keep the spend (and the computed answer, which remains
	// readable via the transcript endpoint), so budget is never spent
	// without being counted.
	ErrCheckpoint = errors.New("service: session checkpoint failed")
)

// SessionParams are the per-session mechanism parameters. Zero fields take
// the manager's defaults at creation time.
type SessionParams struct {
	// ID optionally pins the session's identifier instead of taking a
	// manager-issued sequential one. The routing front door uses this to
	// place a session on the replica its id hashes to before the session
	// exists. Ids share the store's naming rules (persist.ValidateID); a
	// collision with any known session fails with ErrSessionExists.
	ID string `json:"id,omitempty"`
	// Eps, Delta is the session's total privacy budget.
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Alpha is the excess-risk accuracy target, Beta the failure
	// probability.
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	// K caps the number of queries the session will answer.
	K int `json:"k,omitempty"`
	// TBudget is the MW update horizon (see core.Config.TBudget).
	TBudget int `json:"tbudget,omitempty"`
	// S is the loss-family scale bound the session enforces.
	S float64 `json:"s,omitempty"`
	// Workers sets the xeval worker count for the session's universe
	// computations — public argmin solves, the err_ℓ value, certificate
	// and MW kernels (0 = the manager's default, which itself defaults to
	// all CPUs). The single-query oracle is shared across sessions and
	// keeps the manager-level engine, so ⊤-answer oracle solves are not
	// governed by this per-session value. Negative values are rejected
	// with HTTP 400 — the knob is a speed dial, never a correctness or
	// privacy dial: xeval results are bit-identical for every worker
	// count.
	Workers int `json:"workers,omitempty"`
	// Accountant names the session's privacy-accounting strategy from the
	// internal/mech registry ("basic", "advanced", "zcdp"; empty = the
	// manager's default, itself defaulting to "advanced"). Unlike Workers
	// this is a semantic dial: "zcdp" composes Gaussian-noise oracle calls
	// more tightly and sustains a larger update horizon at the same
	// (ε, δ, α). Unknown names are rejected with HTTP 400.
	Accountant string `json:"accountant,omitempty"`
	// AccountantParams optionally carries accountant-specific JSON
	// parameters (e.g. {"delta_prime": …} for "advanced").
	AccountantParams json.RawMessage `json:"accountant_params,omitempty"`
	// Engine selects the session's evaluation engine ("dense", "factored",
	// "auto"; empty = the manager's default, itself defaulting to dense —
	// see core.Config.Engine). "factored" answers junta-supported losses
	// without materializing the universe; unknown names are rejected with
	// HTTP 400.
	Engine string `json:"engine,omitempty"`
}

// merged fills zero fields from defaults.
func (p SessionParams) merged(def SessionParams) SessionParams {
	if p.Eps == 0 {
		p.Eps = def.Eps
	}
	if p.Delta == 0 {
		p.Delta = def.Delta
	}
	if p.Alpha == 0 {
		p.Alpha = def.Alpha
	}
	if p.Beta == 0 {
		p.Beta = def.Beta
	}
	if p.K == 0 {
		p.K = def.K
	}
	if p.TBudget == 0 {
		p.TBudget = def.TBudget
	}
	if p.S == 0 {
		p.S = def.S
	}
	if p.Workers == 0 {
		p.Workers = def.Workers
	}
	if p.Engine == "" {
		p.Engine = def.Engine
	}
	if p.Accountant == "" {
		p.Accountant = def.Accountant
		// Default accountant params belong to the default accountant; a
		// session naming its own accountant must not inherit another
		// strategy's parameters.
		if len(p.AccountantParams) == 0 {
			p.AccountantParams = def.AccountantParams
		}
	}
	return p
}

// Limits bound the manager's resource usage.
type Limits struct {
	// MaxSessions caps concurrently open sessions (default 64).
	MaxSessions int
	// MaxK caps any single session's query budget (default 100000).
	MaxK int
	// RetainClosed caps how many closed sessions stay addressable for
	// status/transcript reads (default 128). Beyond the cap the oldest
	// closed sessions are evicted, bounding memory on create/close churn.
	RetainClosed int
}

// DefaultSessionParams is the fallback configuration applied to fields the
// caller leaves zero: a (1, 1e-6) budget, α = 0.05, K = 100 queries over a
// 12-update horizon with the S = 2 scale the unit-ball GLM losses certify,
// composed under the paper's "advanced" (DRV10) accountant.
func DefaultSessionParams() SessionParams {
	return SessionParams{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.05, Beta: 0.05,
		K: 100, TBudget: 12, S: 2,
		Accountant: mech.DefaultAccountant,
	}
}

// Config parameterizes a Manager.
type Config struct {
	// Data is the private dataset every session queries.
	Data *dataset.Dataset
	// Source seeds all session randomness (split per session).
	Source *sample.Source
	// Oracle is the single-query algorithm A′ (default erm.NoisyGD{}).
	Oracle erm.Oracle
	// Defaults fill zero fields of per-session parameters
	// (DefaultSessionParams when a field here is itself zero).
	Defaults SessionParams
	// Limits bound resource usage.
	Limits Limits
	// Store makes the manager durable: every session checkpoints into it
	// (on create, ⊤ answers, Checkpoint, close, and graceful shutdown) and
	// New recovers every stored session — live ones resume mid-interaction
	// bit-identically, closed ones stay readable for audits. Nil serves
	// from memory only. The store's manifest pins a fingerprint of Data;
	// opening old state over a different dataset fails. Any
	// persist.Backend works: the state-directory Store, or a Remote
	// against a `pmwcm store` blob endpoint (which has no WAL support —
	// see WAL below).
	Store persist.Backend
	// WAL (requires Store) switches the per-⊤ durable point from a full
	// state rewrite to an append-only per-session log with manager-level
	// group commit: each event appends one small record, concurrent
	// sessions' ⊤ commits share fsyncs, and the log periodically compacts
	// into the snapshot format. Recovery = snapshot + WAL-tail replay,
	// with the same bit-identity and ledger re-verification guarantees; a
	// manager with WAL off still replays (then folds away) any WAL left by
	// a previous WAL-mode run, so the flag can be toggled freely between
	// restarts.
	WAL bool
	// CommitWindow bounds how long a group-commit batch stays open while
	// commits keep arriving (0 = persist.DefaultCommitWindow). A latency /
	// fsync-count dial only; never affects answers.
	CommitWindow time.Duration
	// CompactEvery folds a session's WAL into its snapshot after this many
	// records (0 = 256), bounding replay length at recovery.
	CompactEvery int
	// CompactBytes likewise triggers compaction on WAL file size
	// (0 = 1 MiB).
	CompactBytes int64
	// MaxResident (requires Store) caps how many live sessions hold
	// memory at once: past the cap the least-recently-touched sessions
	// are evicted — folded into their durable snapshots and dropped from
	// memory — and paged back in through the recovery path on their next
	// touch. 0 disables eviction (every open session stays resident).
	MaxResident int
	// IdleTTL (requires Store) evicts live sessions untouched for this
	// long, independent of MaxResident. 0 disables the idle sweep.
	IdleTTL time.Duration
	// Metrics enables observability: the manager records query
	// dispositions and batch shapes into the registry and registers a
	// scrape-time collector for session counts and per-session /
	// per-accountant budget gauges. Nil disables instrumentation at zero
	// cost. Metrics are observation only — enabling them leaves answers,
	// ledgers, and transcripts bit-identical.
	Metrics *obs.Registry
}

// Manager hosts concurrent analyst sessions over one private dataset. All
// methods are safe for concurrent use.
type Manager struct {
	cfg Config
	// fp is the dataset fingerprint, computed once at construction (only
	// when durable): it is a constant of the manager's lifetime and goes
	// into every manifest write.
	fp persist.DatasetInfo
	// met holds the hot-path instruments (all-nil no-ops when metrics are
	// disabled); started anchors the uptime report.
	met     *svcMetrics
	started time.Time
	// com is the manager-wide group committer WAL-mode sessions commit
	// through (nil when WAL mode is off).
	com *persist.GroupCommitter

	mu        sync.Mutex
	seq       uint64
	sessions  map[string]*Session
	closedIDs []string // closed sessions in close order, for eviction
	open      int
	shutdown  bool

	// Residency state (see evict.go). sessions holds only *resident*
	// sessions; pagedOut marks open sessions that live solely in the
	// store; paging gates ids with an eviction or page-in in flight;
	// residentLive counts live (non-closed) resident sessions — the
	// number MaxResident bounds.
	pagedOut     map[string]bool
	paging       map[string]chan struct{}
	residentLive int
	janitorStop  chan struct{}
}

// New validates cfg and constructs an empty Manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Data == nil || cfg.Data.N() == 0 {
		return nil, fmt.Errorf("service: empty dataset")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("service: nil random source")
	}
	cfg.Defaults = cfg.Defaults.merged(DefaultSessionParams())
	if cfg.Defaults.Workers < 0 {
		return nil, fmt.Errorf("service: default workers %d: %w", cfg.Defaults.Workers, core.ErrInvalidWorkers)
	}
	if cfg.Oracle == nil {
		cfg.Oracle = erm.NoisyGD{Engine: xeval.New(cfg.Defaults.Workers)}
	}
	if cfg.Limits.MaxSessions <= 0 {
		cfg.Limits.MaxSessions = 64
	}
	if cfg.Limits.MaxK <= 0 {
		cfg.Limits.MaxK = 100000
	}
	if cfg.Limits.RetainClosed <= 0 {
		cfg.Limits.RetainClosed = 128
	}
	if cfg.WAL && cfg.Store == nil {
		return nil, fmt.Errorf("service: WAL mode requires a state directory (Config.Store)")
	}
	if cfg.WAL && !cfg.Store.SupportsWAL() {
		return nil, fmt.Errorf("service: store %s does not support per-session WALs (use snapshot checkpoints)", cfg.Store.Location())
	}
	if (cfg.MaxResident > 0 || cfg.IdleTTL > 0) && cfg.Store == nil {
		return nil, fmt.Errorf("service: session eviction requires a durable store (Config.Store)")
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 256
	}
	if cfg.CompactBytes <= 0 {
		cfg.CompactBytes = 1 << 20
	}
	m := &Manager{
		cfg:      cfg,
		met:      newSvcMetrics(cfg.Metrics),
		started:  time.Now(),
		sessions: map[string]*Session{},
		pagedOut: map[string]bool{},
		paging:   map[string]chan struct{}{},
	}
	if cfg.WAL {
		m.com = persist.NewGroupCommitter(cfg.CommitWindow)
	}
	if cfg.Store != nil {
		cfg.Store.Instrument(cfg.Metrics)
		if err := m.recover(); err != nil {
			m.com.Close()
			return nil, err
		}
		// Recovery may have restored more live sessions than the residency
		// cap allows (WAL-holders restore eagerly); sweep down to the cap.
		m.enforceResident("")
	}
	if cfg.IdleTTL > 0 {
		m.janitorStop = make(chan struct{})
		go m.janitor()
	}
	if cfg.Metrics != nil {
		cfg.Metrics.RegisterCollector(m.collect)
	}
	return m, nil
}

// coreConfig maps fully merged session parameters onto the mechanism
// configuration. Creation and recovery both go through it, so a restored
// session is rebuilt from exactly the derivation that created it.
func (m *Manager) coreConfig(p SessionParams) core.Config {
	return core.Config{
		Eps: p.Eps, Delta: p.Delta,
		Alpha: p.Alpha, Beta: p.Beta,
		K: p.K, S: p.S,
		Oracle:           m.cfg.Oracle,
		TBudget:          p.TBudget,
		Workers:          p.Workers,
		Accountant:       p.Accountant,
		AccountantParams: p.AccountantParams,
		Engine:           p.Engine,
	}
}

// recover replays the state directory into the manager: the manifest is
// verified against the dataset fingerprint (or initialized on a fresh
// directory), every stored session is restored — live sessions resume
// mid-interaction, closed ones become readable audit records — and each
// restored ledger is re-verified against its own transcript before the
// session serves again.
func (m *Manager) recover() error {
	m.fp = persist.Fingerprint(m.cfg.Data)
	man, err := m.cfg.Store.LoadManifest()
	if err != nil {
		return err
	}
	if man == nil {
		man = &persist.Manifest{Dataset: m.fp, Source: m.cfg.Source.State()}
		if err := m.cfg.Store.SaveManifest(man); err != nil {
			return err
		}
	} else {
		if man.Dataset != m.fp {
			return fmt.Errorf("service: store %s belongs to a different dataset (manifest %+v, have %+v)",
				m.cfg.Store.Location(), man.Dataset, m.fp)
		}
		// Resume the root noise stream from the recorded position — not
		// from the configured source, which a restart rewinds to its seed.
		// A rewound root would split the same child seeds again and hand a
		// post-restart session a noise stream some pre-restart session
		// already drew from: correlated noise across sessions that no
		// ledger accounts for.
		src, err := sample.FromState(man.Source)
		if err != nil {
			return fmt.Errorf("service: manifest source state: %w", err)
		}
		m.cfg.Source = src
	}
	m.seq = man.Seq

	ids, err := m.cfg.Store.Sessions()
	if err != nil {
		return err
	}
	// First pass: read every state file, bound the closed-session backlog
	// *before* the expensive mechanism restores, and pin seq above every
	// stored id (guarding against a manifest that lagged a create — ids
	// are issued from seq, so seq must dominate them).
	var states []*persist.SessionState
	var closedIDs []string
	for _, id := range ids {
		st, err := m.cfg.Store.LoadSession(id)
		if err != nil {
			return err
		}
		states = append(states, st)
		if st.Closed {
			closedIDs = append(closedIDs, id)
		}
		var n uint64
		if _, err := fmt.Sscanf(id, "s-%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
	// Evict the oldest closed sessions beyond the retention cap, deleting
	// their files so the state directory cannot grow without bound under
	// create/close churn. (Close order is lost across restarts; id order —
	// creation order — is the deterministic stand-in.)
	evicted := map[string]bool{}
	for len(closedIDs) > m.cfg.Limits.RetainClosed {
		id := closedIDs[0]
		closedIDs = closedIDs[1:]
		evicted[id] = true
		if err := m.cfg.Store.DeleteSession(id); err != nil {
			return err
		}
		if err := m.cfg.Store.RemoveWAL(id); err != nil {
			return err
		}
	}
	for _, st := range states {
		if evicted[st.ID] {
			continue
		}
		if m.cfg.MaxResident > 0 && !st.Closed && !m.cfg.Store.HasWAL(st.ID) {
			// Residency-capped start: a live session whose snapshot is
			// complete (no WAL tail to fold) recovers lazily — it counts as
			// open but stays paged out, and its (expensive) restore plus
			// ledger re-verification runs at first touch through the very
			// same restoreOne path. Sessions with a log tail restore eagerly
			// so the tail is folded exactly once; the enforceResident sweep
			// after recovery pushes any excess back out.
			m.pagedOut[st.ID] = true
			m.open++
			continue
		}
		// The WAL tail is replayed whether or not this manager runs in WAL
		// mode, so toggling the flag between restarts never strands
		// records. (A snapshot-only session simply has no WAL file.)
		walRecs, err := m.cfg.Store.LoadWAL(st.ID)
		if err != nil {
			return fmt.Errorf("service: recovering session %s: %w", st.ID, err)
		}
		s, err := m.restoreOne(st, walRecs)
		if err != nil {
			return fmt.Errorf("service: recovering session %s: %w", st.ID, err)
		}
		if m.cfg.Store.HasWAL(st.ID) {
			// Fold the replayed tail into a fresh snapshot and drop the
			// old log, so recovery converges instead of replaying an
			// ever-longer tail on every restart. The checkpoint runs
			// before the session has a WAL attached, so it is a plain
			// forced snapshot.
			if err := s.Checkpoint(); err != nil {
				return fmt.Errorf("service: compacting recovered session %s: %w", st.ID, err)
			}
			if err := m.cfg.Store.RemoveWAL(st.ID); err != nil {
				return fmt.Errorf("service: compacting recovered session %s: %w", st.ID, err)
			}
		}
		if m.cfg.WAL && !st.Closed {
			wal, err := m.cfg.Store.OpenWAL(st.ID)
			if err != nil {
				return fmt.Errorf("service: opening wal for recovered session %s: %w", st.ID, err)
			}
			s.attachWAL(wal, m.com, m.cfg.CompactEvery, m.cfg.CompactBytes)
		}
		m.sessions[st.ID] = s
		if st.Closed {
			m.closedIDs = append(m.closedIDs, st.ID)
		} else {
			m.open++
			m.residentLive++
		}
	}
	return nil
}

// restoreOne rebuilds one session from its durable state: the snapshot,
// then — when a WAL tail survives past it — replay. Replay re-executes
// each logged query spec against the restored mechanism and demands the
// produced event match the recorded one bit for bit; because every event
// (⊥ included) is logged and every answer draws from positional noise
// streams, a matching replay proves the restored RNG positions, ledger,
// and hypothesis are exactly the uninterrupted run's. st is updated in
// place to the post-replay state (events appended, Closed possibly set).
func (m *Manager) restoreOne(st *persist.SessionState, walRecs []*persist.WALRecord) (*Session, error) {
	var p SessionParams
	if err := json.Unmarshal(st.Params, &p); err != nil {
		return nil, fmt.Errorf("decoding session params: %w", err)
	}
	if st.Oracle != m.cfg.Oracle.Name() {
		return nil, fmt.Errorf("session was served by oracle %q, manager runs %q — restored answers would diverge from the original interaction", st.Oracle, m.cfg.Oracle.Name())
	}
	if st.Core == nil || st.Transcript == nil {
		return nil, fmt.Errorf("state file missing core snapshot or transcript")
	}
	srv, err := core.Restore(m.coreConfig(p), m.cfg.Data, st.Core)
	if err != nil {
		return nil, err
	}
	rec := &transcript.Recorder{Srv: srv, T: st.Transcript}
	for _, r := range walRecs {
		switch r.Kind {
		case persist.WALEvent:
			if r.Event == nil || r.Event.Index != r.Seq {
				return nil, fmt.Errorf("wal record %d is malformed", r.Seq)
			}
			if r.Seq <= len(rec.T.Events) {
				// Already inside the snapshot: a crash between a compaction's
				// snapshot write and its log truncation leaves this overlap.
				continue
			}
			if r.Seq != len(rec.T.Events)+1 {
				return nil, fmt.Errorf("wal skips from event %d to %d", len(rec.T.Events), r.Seq)
			}
			var spec convex.Spec
			if err := json.Unmarshal(r.Spec, &spec); err != nil {
				return nil, fmt.Errorf("wal record %d spec: %w", r.Seq, err)
			}
			l, err := convex.Build(m.cfg.Data.U, spec)
			if err != nil {
				return nil, fmt.Errorf("wal record %d spec: %w", r.Seq, err)
			}
			if _, err := rec.AnswerKeyed(l, r.Event.CacheKey); err != nil {
				return nil, fmt.Errorf("replaying wal record %d: %w", r.Seq, err)
			}
			if got := rec.T.Events[len(rec.T.Events)-1]; !eventsEqual(got, *r.Event) {
				return nil, fmt.Errorf("wal replay of event %d diverged from the recorded exchange — state and log disagree", r.Seq)
			}
		case persist.WALClose:
			st.Closed = true
		default:
			return nil, fmt.Errorf("wal record %d has unknown kind %q", r.Seq, r.Kind)
		}
	}
	if err := verifyLedger(p, srv, st.Transcript); err != nil {
		return nil, err
	}
	id := st.ID
	return restoreSession(st, p, rec, m.cfg.Data.U, m.cfg.Store, m.met, func() { m.release(id) }), nil
}

// eventsEqual compares a replayed event with its recorded WAL twin, bit
// for bit: any drift — answer bytes, disposition, ledger deltas, cache
// key — means the restored state would not continue the uninterrupted
// interaction, and recovery must refuse rather than serve from it.
func eventsEqual(a, b transcript.Event) bool {
	if a.Index != b.Index || a.Query != b.Query || a.Top != b.Top ||
		a.EpsSpent != b.EpsSpent || a.DeltaSpent != b.DeltaSpent || a.RhoSpent != b.RhoSpent ||
		a.CumEps != b.CumEps || a.CumDelta != b.CumDelta || a.CacheKey != b.CacheKey ||
		len(a.Answer) != len(b.Answer) {
		return false
	}
	for i := range a.Answer {
		if a.Answer[i] != b.Answer[i] {
			return false
		}
	}
	return true
}

// verifyLedger re-verifies a restored accountant against the replayed
// transcript: a fresh accountant fed the reservation and every recorded ⊤
// spend must land on exactly the restored ledger's composed bound and
// remaining budget. This catches a state file whose ledger and transcript
// disagree — tampering or a partial write that slipped past the envelope —
// before the session spends any further budget on top of it.
func verifyLedger(p SessionParams, srv *core.Server, t *transcript.Transcript) error {
	fresh, err := mech.NewAccountant(p.Accountant, mech.Params{Eps: p.Eps, Delta: p.Delta}, p.AccountantParams)
	if err != nil {
		return err
	}
	if err := fresh.Reserve(mech.Params{Eps: p.Eps / 2, Delta: p.Delta / 2}); err != nil {
		return err
	}
	if srv.Answered() != len(t.Events) {
		return fmt.Errorf("ledger records %d answered queries but transcript has %d events", srv.Answered(), len(t.Events))
	}
	tops := 0
	for _, ev := range t.Events {
		if !ev.Top {
			continue
		}
		tops++
		if err := fresh.Spend(mech.Cost{Eps: ev.EpsSpent, Delta: ev.DeltaSpent, Rho: ev.RhoSpent}); err != nil {
			return fmt.Errorf("replaying transcript spend %d: %w", ev.Index, err)
		}
	}
	if srv.Updates() != tops {
		return fmt.Errorf("ledger records %d updates but transcript shows %d ⊤ answers", srv.Updates(), tops)
	}
	if fresh.Total() != srv.Privacy() || fresh.Remaining() != srv.Remaining() {
		return fmt.Errorf("restored ledger (total %+v, remaining %+v) does not match transcript replay (total %+v, remaining %+v)",
			srv.Privacy(), srv.Remaining(), fresh.Total(), fresh.Remaining())
	}
	return nil
}

// Durable reports whether the manager checkpoints sessions to a state
// directory.
func (m *Manager) Durable() bool { return m.cfg.Store != nil }

// Universe returns the public data universe sessions answer over.
func (m *Manager) Universe() universe.Universe { return m.cfg.Data.U }

// Defaults returns the fully merged default session parameters.
func (m *Manager) Defaults() SessionParams { return m.cfg.Defaults }

// CreateSession opens a new session; zero fields of req take the manager's
// defaults. It fails with ErrTooManySessions at the open-session limit,
// ErrSessionExists when req.ID names a session the manager already knows,
// and ErrShuttingDown after Shutdown.
func (m *Manager) CreateSession(req SessionParams) (*Session, error) {
	p := req.merged(m.cfg.Defaults)
	if p.K > m.cfg.Limits.MaxK {
		return nil, fmt.Errorf("service: session K = %d exceeds limit %d", p.K, m.cfg.Limits.MaxK)
	}
	if p.ID != "" {
		if err := persist.ValidateID(p.ID); err != nil {
			return nil, fmt.Errorf("service: session id %q: %w", p.ID, err)
		}
	}

	m.mu.Lock()
	if m.shutdown {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if m.open >= m.cfg.Limits.MaxSessions {
		m.mu.Unlock()
		return nil, ErrTooManySessions
	}
	id := p.ID
	if id == "" {
		// Manager-issued ids come off the manifest-pinned sequence; pinned
		// ids never advance it (recovery re-derives seq only from "s-%d"
		// names, so foreign names cannot collide with issued ones).
		m.seq++
		id = fmt.Sprintf("s-%06d", m.seq)
	} else if _, dup := m.sessions[id]; dup || m.pagedOut[id] || m.paging[id] != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrSessionExists, id)
	}
	seq := m.seq
	src := m.cfg.Source.Split()
	// Persist the issued sequence number and the advanced root-stream
	// position before the session exists, still under the lock (concurrent
	// creates must not reorder manifest writes): a crash here at worst
	// skips an id and a child seed, never reuses either.
	if m.cfg.Store != nil {
		if err := m.cfg.Store.SaveManifest(&persist.Manifest{Seq: seq, Dataset: m.fp, Source: m.cfg.Source.State()}); err != nil {
			m.mu.Unlock()
			return nil, err
		}
	}
	// Reserve the slot before the (comparatively slow) server construction
	// so the limit holds under concurrent creates.
	m.open++
	m.mu.Unlock()

	undo := func() {
		m.mu.Lock()
		m.open--
		m.mu.Unlock()
	}

	srv, err := core.New(m.coreConfig(p), m.cfg.Data, src)
	if err != nil {
		undo()
		return nil, err
	}

	s := newSession(id, p, srv, m.cfg.Data.U, time.Now(), m.cfg.Oracle.Name(), m.cfg.Store, m.met, func() { m.release(id) })
	// The creation checkpoint makes the session durable from its first
	// moment: the split noise stream and the already-drawn sparse-vector
	// threshold are on disk before any query is answered.
	if err := s.Checkpoint(); err != nil && err != ErrNotDurable {
		undo()
		return nil, err
	}
	if m.cfg.WAL {
		// Attach the log after the creation checkpoint so the WAL only ever
		// holds events past a snapshot that exists.
		wal, err := m.cfg.Store.OpenWAL(id)
		if err != nil {
			undo()
			_ = m.cfg.Store.DeleteSession(id)
			return nil, err
		}
		s.attachWAL(wal, m.com, m.cfg.CompactEvery, m.cfg.CompactBytes)
	}
	m.mu.Lock()
	if m.shutdown {
		m.open--
		m.mu.Unlock()
		if m.cfg.Store != nil {
			_ = m.cfg.Store.DeleteSession(id)
			_ = m.cfg.Store.RemoveWAL(id)
		}
		return nil, ErrShuttingDown
	}
	m.sessions[id] = s
	m.residentLive++
	m.mu.Unlock()
	m.enforceResident(id)
	return s, nil
}

// Session returns the session with the given id (open or closed), paging
// a paged-out session back into memory first. The returned handle is the
// session's *current* resident incarnation; an eviction racing the caller
// invalidates it with ErrPagedOut, which the manager-level operation
// wrappers (Query, QueryBatch, …) absorb by retrying through a fresh
// page-in.
func (m *Manager) Session(id string) (*Session, error) {
	for {
		m.mu.Lock()
		if s, ok := m.sessions[id]; ok {
			m.mu.Unlock()
			s.touch()
			return s, nil
		}
		if gate, ok := m.paging[id]; ok {
			// An eviction or another caller's page-in is in flight; wait for
			// it to settle and re-resolve.
			m.mu.Unlock()
			<-gate
			continue
		}
		if !m.pagedOut[id] {
			m.mu.Unlock()
			return nil, ErrSessionNotFound
		}
		if m.shutdown {
			// Paged-out sessions are already suspended on disk exactly as
			// Shutdown leaves resident ones; do not revive them.
			m.mu.Unlock()
			return nil, ErrShuttingDown
		}
		gate := make(chan struct{})
		m.paging[id] = gate
		m.mu.Unlock()

		s, err := m.pageIn(id)
		m.mu.Lock()
		if err == nil {
			m.sessions[id] = s
			delete(m.pagedOut, id)
			m.residentLive++
			m.met.pagedIn()
		}
		delete(m.paging, id)
		m.mu.Unlock()
		close(gate)
		if err != nil {
			return nil, fmt.Errorf("service: paging in session %s: %w", id, err)
		}
		s.touch()
		m.enforceResident(id)
		return s, nil
	}
}

// CloseSession closes the identified session, freeing its slot. Closing an
// already-closed session returns ErrSessionClosed.
func (m *Manager) CloseSession(id string) error {
	return m.withSession(id, func(s *Session) error { return s.Close() })
}

// release frees a closed session's slot and bounds the closed-session
// backlog, deleting evicted sessions' state files so the directory cannot
// grow without bound. It runs exactly once per session, from Session.Close
// or suspend.
func (m *Manager) release(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.open--
	// The closing session was necessarily resident and live (Close on a
	// paged-out incarnation fails with ErrPagedOut before getting here).
	m.residentLive--
	if m.shutdown {
		// Suspending sessions at shutdown must not enter the closed-backlog
		// eviction below: suspended sessions are live on disk, and evicting
		// them here would delete state the next start needs. Recovery
		// re-applies the retention bound to genuinely closed sessions.
		return
	}
	m.closedIDs = append(m.closedIDs, id)
	for len(m.closedIDs) > m.cfg.Limits.RetainClosed {
		old := m.closedIDs[0]
		m.closedIDs = m.closedIDs[1:]
		delete(m.sessions, old)
		if m.cfg.Store != nil {
			// Best-effort: a failed unlink is re-attempted by the next
			// restart's recovery eviction. Close already removed the WAL, but
			// a Close whose final compaction failed leaves one behind.
			_ = m.cfg.Store.DeleteSession(old)
			_ = m.cfg.Store.RemoveWAL(old)
		}
	}
}

// Statuses returns a snapshot of every *resident* session's status,
// ordered by id. Paged-out sessions are deliberately excluded — listing
// them would page every evicted session back in, defeating the residency
// bound; their ids stay addressable through GET /v1/sessions/{id}.
func (m *Manager) Statuses() []SessionStatus {
	m.mu.Lock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sessions := make([]*Session, 0, len(ids))
	sort.Strings(ids)
	for _, id := range ids {
		sessions = append(sessions, m.sessions[id])
	}
	m.mu.Unlock()
	out := make([]SessionStatus, len(sessions))
	for i, s := range sessions {
		out[i] = s.Status()
	}
	return out
}

// OpenSessions returns the number of currently open sessions.
func (m *Manager) OpenSessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.open
}

// Shutdown stops every open session and rejects all further creates and
// queries. It is idempotent; status and transcript reads keep working so
// in-flight audits can complete. On a durable manager this is a *suspend*,
// not a close: each live session is checkpointed with its closed flag
// unset, so a new manager over the same state directory resumes every one
// of them mid-interaction — the graceful-restart path of `pmwcm serve`.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.shutdown {
		m.mu.Unlock()
		return
	}
	m.shutdown = true
	if m.janitorStop != nil {
		close(m.janitorStop)
	}
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		// suspend releases each open session's slot and checkpoints live
		// state without persisting a close; already-closed sessions are
		// left as they are.
		s.suspend()
	}
	// With every session suspended the group committer drains and stops;
	// any straggling commit after this degrades to a direct fsync.
	m.com.Close()
}

// OracleByName maps a CLI/config oracle name to an erm.Oracle running its
// universe-sized computations on workers xeval workers (0 = all CPUs). The
// empty name selects NoisyGD, the generic Lipschitz oracle.
func OracleByName(name string, workers int) (erm.Oracle, error) {
	if workers < 0 {
		return nil, fmt.Errorf("service: oracle workers %d: %w", workers, core.ErrInvalidWorkers)
	}
	eng := xeval.New(workers)
	switch name {
	case "", "noisygd":
		return erm.NoisyGD{Engine: eng}, nil
	case "netexp":
		return erm.NetExpMech{Engine: eng}, nil
	case "outputperturb":
		return erm.OutputPerturbation{Engine: eng}, nil
	case "glmreduce":
		return erm.GLMReduction{Engine: eng}, nil
	case "laplace-linear":
		return erm.LaplaceLinear{}, nil
	case "nonprivate":
		return erm.NonPrivate{Engine: eng}, nil
	default:
		return nil, fmt.Errorf("service: unknown oracle %q (have noisygd, netexp, outputperturb, glmreduce, laplace-linear, nonprivate)", name)
	}
}
