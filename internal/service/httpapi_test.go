package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/universe"
)

// startServer brings up the full HTTP stack — manager, handler, real
// listener on an ephemeral port — exactly as `pmwcm serve` would.
func startServer(t *testing.T) (*Manager, string) {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(42)
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SampleFrom(src.Split(), pop, 200000)
	m, err := New(Config{
		Data:   data,
		Source: src.Split(),
		Defaults: SessionParams{
			Eps: 1, Delta: 1e-6, Alpha: 0.02, K: 100, TBudget: 12,
		},
		Limits: Limits{MaxSessions: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(m)}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		m.Shutdown()
	})
	return m, "http://" + ln.Addr().String()
}

// doJSON issues a request with an optional JSON body and decodes the JSON
// response, returning the HTTP status.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPEndToEnd is the acceptance path: start the service on an
// ephemeral port, create a session over HTTP, submit several
// convex-minimization queries (at least one crossing the sparse-vector
// threshold and spending oracle budget), read back the JSON transcript with
// its cumulative privacy spend, and observe the budget-exhaustion rejection
// after the K-th query.
func TestHTTPEndToEnd(t *testing.T) {
	_, base := startServer(t)

	// Health and loss discovery.
	var health struct {
		OK           bool   `json:"ok"`
		OpenSessions int    `json:"open_sessions"`
		Universe     string `json:"universe"`
	}
	if st := doJSON(t, "GET", base+"/healthz", nil, &health); st != 200 || !health.OK {
		t.Fatalf("healthz: status %d, %+v", st, health)
	}
	var losses struct {
		Kinds []string `json:"kinds"`
	}
	if st := doJSON(t, "GET", base+"/v1/losses", nil, &losses); st != 200 || len(losses.Kinds) < 8 {
		t.Fatalf("losses: status %d, kinds %v", st, losses.Kinds)
	}

	// Create a session with K = 4.
	const k = 4
	var sess SessionStatus
	if st := doJSON(t, "POST", base+"/v1/sessions", map[string]any{"k": k}, &sess); st != 201 {
		t.Fatalf("create session: status %d", st)
	}
	if sess.QueriesMax != k || sess.ID == "" {
		t.Fatalf("created session %+v, want K = %d", sess, k)
	}

	// Submit K queries: counting queries plus genuine CM queries. With the
	// fixed seed, the skewed data sits far from the uniform starting
	// hypothesis, so at least one must cross the SV threshold (⊤) and
	// spend oracle budget.
	queries := []map[string]any{
		{"kind": "positive", "params": map[string]any{"coord": 0}},
		{"kind": "halfspace", "params": map[string]any{"w": []float64{1, 1, 0}, "threshold": 0}},
		{"kind": "logistic", "params": map[string]any{"temp": 0.5}},
		{"kind": "squared"},
	}
	var tops int
	var spentSum float64
	for i, q := range queries {
		var res QueryResult
		st := doJSON(t, "POST", base+"/v1/sessions/"+sess.ID+"/query", q, &res)
		if st != 200 {
			t.Fatalf("query %d: status %d", i+1, st)
		}
		if len(res.Answer) == 0 {
			t.Fatalf("query %d: empty answer", i+1)
		}
		if res.QueriesUsed != i+1 {
			t.Fatalf("query %d: ledger says %d used", i+1, res.QueriesUsed)
		}
		if res.Top {
			tops++
			if res.EpsSpent <= 0 {
				t.Fatalf("query %d: ⊤ with no oracle spend", i+1)
			}
		} else if res.EpsSpent != 0 {
			t.Fatalf("query %d: ⊥ but spent ε = %v", i+1, res.EpsSpent)
		}
		spentSum += res.EpsSpent
	}
	if tops == 0 {
		t.Fatal("no query triggered ⊤/oracle spend; the acceptance path needs at least one")
	}

	// A K+1-st *fresh* query is rejected with the budget-exhaustion
	// status; a repeat of an answered query is served from the cache with
	// zero spend even though the session is exhausted.
	var apiErr struct {
		Error string `json:"error"`
	}
	fresh := map[string]any{"kind": "positive", "params": map[string]any{"coord": 1}}
	if st := doJSON(t, "POST", base+"/v1/sessions/"+sess.ID+"/query", fresh, &apiErr); st != 429 {
		t.Fatalf("query past K: status %d (%s), want 429", st, apiErr.Error)
	}
	var cachedRes QueryResult
	if st := doJSON(t, "POST", base+"/v1/sessions/"+sess.ID+"/query", queries[0], &cachedRes); st != 200 || !cachedRes.Cached || cachedRes.EpsSpent != 0 {
		t.Fatalf("cached repeat past K: status %d, %+v; want 200 cached zero-spend", st, cachedRes)
	}

	// The transcript shows every event and the cumulative privacy spend.
	var tr TranscriptRecord
	if st := doJSON(t, "GET", base+"/v1/sessions/"+sess.ID+"/transcript", nil, &tr); st != 200 {
		t.Fatalf("transcript: status %d", st)
	}
	if len(tr.Transcript.Events) != k {
		t.Fatalf("transcript has %d events, want %d", len(tr.Transcript.Events), k)
	}
	if tr.Tops != tops {
		t.Fatalf("transcript counts %d ⊤, observed %d", tr.Tops, tops)
	}
	if diff := tr.CumEps - spentSum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cumulative spend %v != summed per-query spend %v", tr.CumEps, spentSum)
	}
	if tr.EpsBound <= tr.CumEps || tr.EpsBound > sess.EpsBudget+1e-9 {
		t.Fatalf("privacy bound %v not in (%v, %v]", tr.EpsBound, tr.CumEps, sess.EpsBudget)
	}

	// Status reflects exhaustion; close flips it to 409s.
	var st SessionStatus
	if code := doJSON(t, "GET", base+"/v1/sessions/"+sess.ID, nil, &st); code != 200 || !st.Exhausted {
		t.Fatalf("status: code %d, %+v; want exhausted", code, st)
	}
	var closed struct {
		Closed bool `json:"closed"`
	}
	if code := doJSON(t, "DELETE", base+"/v1/sessions/"+sess.ID, nil, &closed); code != 200 || !closed.Closed {
		t.Fatalf("close: code %d, %+v", code, closed)
	}
	if code := doJSON(t, "POST", base+"/v1/sessions/"+sess.ID+"/query", queries[0], &apiErr); code != 409 {
		t.Fatalf("query after close: status %d, want 409", code)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, base := startServer(t)
	var apiErr struct {
		Error string `json:"error"`
	}
	if st := doJSON(t, "GET", base+"/v1/sessions/s-424242", nil, &apiErr); st != 404 {
		t.Fatalf("unknown session: status %d, want 404", st)
	}
	var sess SessionStatus
	if st := doJSON(t, "POST", base+"/v1/sessions", nil, &sess); st != 201 {
		t.Fatalf("create with empty body: status %d, want 201 (defaults)", st)
	}
	if st := doJSON(t, "POST", base+"/v1/sessions/"+sess.ID+"/query",
		map[string]any{"kind": "bogus"}, &apiErr); st != 400 {
		t.Fatalf("unknown loss: status %d, want 400", st)
	}
	if st := doJSON(t, "POST", base+"/v1/sessions/"+sess.ID+"/query",
		map[string]any{"kind": "positive", "params": map[string]any{"coordz": 1}}, &apiErr); st != 400 {
		t.Fatalf("typo'd params: status %d, want 400", st)
	}
	// Session limit (MaxSessions = 4, one open) → three more fine, then 503.
	for i := 0; i < 3; i++ {
		if st := doJSON(t, "POST", base+"/v1/sessions", nil, &sess); st != 201 {
			t.Fatalf("create %d: status %d", i+2, st)
		}
	}
	if st := doJSON(t, "POST", base+"/v1/sessions", nil, &apiErr); st != 503 {
		t.Fatalf("create past limit: status %d, want 503", st)
	}
}

func TestHTTPShutdownRejectsNewWork(t *testing.T) {
	m, base := startServer(t)
	var sess SessionStatus
	if st := doJSON(t, "POST", base+"/v1/sessions", nil, &sess); st != 201 {
		t.Fatalf("create: status %d", st)
	}
	m.Shutdown()
	var apiErr struct {
		Error string `json:"error"`
	}
	if st := doJSON(t, "POST", base+"/v1/sessions", nil, &apiErr); st != 503 {
		t.Fatalf("create after shutdown: status %d, want 503", st)
	}
	if st := doJSON(t, "POST", base+"/v1/sessions/"+sess.ID+"/query",
		map[string]any{"kind": "positive"}, &apiErr); st != 409 {
		t.Fatalf("query after shutdown: status %d, want 409", st)
	}
	// Audit reads survive shutdown.
	var tr TranscriptRecord
	if st := doJSON(t, "GET", base+"/v1/sessions/"+sess.ID+"/transcript", nil, &tr); st != 200 {
		t.Fatalf("transcript after shutdown: status %d", st)
	}
}

// TestHTTPSessionList exercises the listing endpoint with several live
// sessions.
func TestHTTPSessionList(t *testing.T) {
	_, base := startServer(t)
	var sess SessionStatus
	for i := 0; i < 3; i++ {
		if st := doJSON(t, "POST", base+"/v1/sessions", map[string]any{"k": 2 + i}, &sess); st != 201 {
			t.Fatalf("create %d: status %d", i+1, st)
		}
	}
	var list struct {
		Sessions []SessionStatus `json:"sessions"`
	}
	if st := doJSON(t, "GET", base+"/v1/sessions", nil, &list); st != 200 {
		t.Fatalf("list: status %d", st)
	}
	if len(list.Sessions) != 3 {
		t.Fatalf("listed %d sessions, want 3", len(list.Sessions))
	}
	for i, s := range list.Sessions {
		if want := fmt.Sprintf("s-%06d", i+1); s.ID != want {
			t.Fatalf("session %d id = %q, want %q", i, s.ID, want)
		}
		if s.QueriesMax != 2+i {
			t.Fatalf("session %d K = %d, want %d", i, s.QueriesMax, 2+i)
		}
	}
}

// TestHTTPWorkersValidation checks the workers bug-net at the API edge: a
// negative per-session worker count is a 400, valid counts create
// sessions, and the parallel session answers queries normally.
func TestHTTPWorkersValidation(t *testing.T) {
	_, base := startServer(t)

	var errResp map[string]string
	status := doJSON(t, "POST", base+"/v1/sessions", SessionParams{Workers: -1}, &errResp)
	if status != http.StatusBadRequest {
		t.Fatalf("workers=-1 status = %d, want 400", status)
	}
	if errResp["error"] == "" {
		t.Error("workers=-1 error body missing")
	}

	var st SessionStatus
	if status := doJSON(t, "POST", base+"/v1/sessions", SessionParams{Workers: 8}, &st); status != http.StatusCreated {
		t.Fatalf("workers=8 status = %d, want 201", status)
	}
	var qr QueryResult
	q := map[string]any{"kind": "positive", "params": map[string]any{"coord": 0}}
	if status := doJSON(t, "POST", base+"/v1/sessions/"+st.ID+"/query", q, &qr); status != http.StatusOK {
		t.Fatalf("query on parallel session status = %d, want 200", status)
	}
	if len(qr.Answer) != 1 {
		t.Errorf("answer = %v, want a scalar", qr.Answer)
	}
}
