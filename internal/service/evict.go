package service

// evict.go is the idle-session eviction layer: the piece that lets one
// manager *host* far more sessions than fit in memory by keeping only
// recently-touched ones resident. An evicted session's complete state is
// folded into its durable snapshot (its WAL, if any, is folded and
// removed — a paged-out session never has a log), the in-memory
// incarnation drops out of the session table, and the next touch pages it
// back in through restoreOne — the same verified path crash recovery
// uses, so the paged-in session continues bit-identically to one that was
// never evicted (pinned by TestEvictPageInGolden).
//
// Concurrency contract: m.paging holds a gate channel per id with an
// eviction or page-in in flight. Lookups wait on the gate and retry;
// operations racing an eviction on a stale *Session observe its pagedOut
// flag, fail with ErrPagedOut, and the manager-level wrappers
// (Manager.Query etc.) page in and retry. Residency changes only under
// m.mu, so resident + paged-out counts stay consistent.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/convex"
)

// ErrPagedOut reports an operation on a session incarnation the manager
// has evicted from residency. It is internal back-pressure: manager-level
// entry points retry through a page-in and callers of those never see it;
// it only escapes to direct holders of a stale *Session handle.
var ErrPagedOut = errors.New("service: session paged out")

// evict folds the session's state into its durable snapshot and marks
// this incarnation paged out. Called by the manager with the id's paging
// gate held. On a fold failure the flag is cleared and the session stays
// resident — eviction must never strand state that exists only in memory.
func (s *Session) evict() error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.pagedOut.Store(true)
	s.mu.Unlock()
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	if s.walMode {
		// Fold the log into the snapshot, then drop it: recovery and page-in
		// must find the whole interaction in the snapshot, and a paged-out
		// session must hold no open file.
		if err := s.compactLocked(); err != nil {
			s.pagedOut.Store(false)
			return err
		}
		if s.wal != nil {
			_ = s.wal.Close()
			_ = s.store.RemoveWAL(s.id)
			s.wal = nil
		}
		return nil
	}
	s.mu.Lock()
	st, err := s.stateLocked()
	seq := len(s.rec.T.Events)
	s.mu.Unlock()
	if err == nil {
		err = s.saveLocked(st, seq, true)
	}
	if err != nil {
		s.pagedOut.Store(false)
		return err
	}
	return nil
}

// Evict forces one live resident session out of memory after folding its
// state into the store. Evicting a session that is already paged out (or
// mid-page) succeeds as a no-op; closed sessions are not evictable (the
// RetainClosed bound governs them), and a memory-only manager has nowhere
// to evict to. The janitor and the -max-resident admission sweep both
// funnel through here; it is exported so operators and tests can force
// the transition.
func (m *Manager) Evict(id string) error {
	if m.cfg.Store == nil {
		return ErrNotDurable
	}
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok {
		paged := m.pagedOut[id] || m.paging[id] != nil
		m.mu.Unlock()
		if paged {
			return nil
		}
		return ErrSessionNotFound
	}
	if s.closed.Load() {
		m.mu.Unlock()
		return ErrSessionClosed
	}
	gate := make(chan struct{})
	m.paging[id] = gate
	delete(m.sessions, id)
	m.mu.Unlock()

	err := s.evict()
	m.mu.Lock()
	switch {
	case err == nil:
		m.pagedOut[id] = true
		m.residentLive--
		m.met.evicted()
	case errors.Is(err, ErrSessionClosed):
		// The session closed between victim selection and the fold; put the
		// closed incarnation back so audits keep finding it (its slot was
		// already released by Close).
		m.sessions[id] = s
	default:
		// Fold failed: the session stays resident and live.
		m.sessions[id] = s
	}
	delete(m.paging, id)
	m.mu.Unlock()
	close(gate)
	return err
}

// pageIn restores one paged-out session from the store — the same
// decode → core.Restore → WAL-replay → ledger-reverify path crash
// recovery runs, so residency cycles cannot weaken the restore
// guarantees. Called with the id's paging gate held.
func (m *Manager) pageIn(id string) (*Session, error) {
	st, err := m.cfg.Store.LoadSession(id)
	if err != nil {
		return nil, err
	}
	walRecs, err := m.cfg.Store.LoadWAL(id)
	if err != nil {
		return nil, err
	}
	s, err := m.restoreOne(st, walRecs)
	if err != nil {
		return nil, err
	}
	if m.cfg.Store.HasWAL(id) {
		// Eviction removes the log, so this only triggers for sessions the
		// lazy startup path left on disk with a WAL tail; fold it exactly as
		// eager recovery would.
		if err := s.Checkpoint(); err != nil {
			return nil, err
		}
		if err := m.cfg.Store.RemoveWAL(id); err != nil {
			return nil, err
		}
	}
	if m.cfg.WAL && !st.Closed {
		wal, err := m.cfg.Store.OpenWAL(id)
		if err != nil {
			return nil, err
		}
		s.attachWAL(wal, m.com, m.cfg.CompactEvery, m.cfg.CompactBytes)
	}
	return s, nil
}

// enforceResident evicts least-recently-touched live sessions until the
// resident count is back under Config.MaxResident. except names a session
// that must survive the sweep (the one just created or paged in — the
// reason the sweep is running).
func (m *Manager) enforceResident(except string) {
	if m.cfg.MaxResident <= 0 || m.cfg.Store == nil {
		return
	}
	for {
		m.mu.Lock()
		if m.shutdown || m.residentLive <= m.cfg.MaxResident {
			m.mu.Unlock()
			return
		}
		victim := ""
		var oldest int64
		for id, s := range m.sessions {
			if id == except || s.closed.Load() {
				continue
			}
			if t := s.lastTouch.Load(); victim == "" || t < oldest {
				victim, oldest = id, t
			}
		}
		m.mu.Unlock()
		if victim == "" {
			return
		}
		if err := m.Evict(victim); err != nil {
			// A closed or vanished victim is re-scanned on the next pass; any
			// other failure (a fold that cannot write) will not improve by
			// picking a different victim right now.
			if errors.Is(err, ErrSessionClosed) || errors.Is(err, ErrSessionNotFound) {
				continue
			}
			return
		}
	}
}

// janitor is the idle-eviction loop a manager with Config.IdleTTL runs:
// every interval it folds out sessions whose last touch is older than the
// TTL. It stops when Shutdown closes janitorStop.
func (m *Manager) janitor() {
	interval := m.cfg.IdleTTL / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-tick.C:
			m.evictIdle()
		}
	}
}

// evictIdle sweeps one idle-eviction pass.
func (m *Manager) evictIdle() {
	cutoff := time.Now().Add(-m.cfg.IdleTTL).UnixNano()
	m.mu.Lock()
	var victims []string
	for id, s := range m.sessions {
		if s.closed.Load() {
			continue
		}
		if s.lastTouch.Load() < cutoff {
			victims = append(victims, id)
		}
	}
	m.mu.Unlock()
	for _, id := range victims {
		_ = m.Evict(id)
	}
}

// ResidentSessions returns the number of live sessions currently holding
// memory (open sessions minus paged-out ones).
func (m *Manager) ResidentSessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.residentLive
}

// withSession runs fn against the session's resident incarnation, paging
// it in if needed and retrying when an eviction wins the race between
// lookup and use. The retry bound exists only to turn a livelock bug into
// an error; two passes already require back-to-back evictions of a
// just-touched session.
func (m *Manager) withSession(id string, fn func(*Session) error) error {
	for attempt := 0; ; attempt++ {
		s, err := m.Session(id)
		if err != nil {
			return err
		}
		err = fn(s)
		if errors.Is(err, ErrPagedOut) && attempt < 4 {
			continue
		}
		if errors.Is(err, ErrPagedOut) {
			return fmt.Errorf("service: session %s: eviction kept outrunning page-in: %w", id, err)
		}
		return err
	}
}

// Query answers one query on the identified session, paging it in when
// evicted. The HTTP layer calls these manager-level wrappers rather than
// holding *Session handles across requests, so an eviction between two
// requests of one analyst is invisible to them.
func (m *Manager) Query(id string, spec convex.Spec) (*QueryResult, error) {
	var res *QueryResult
	err := m.withSession(id, func(s *Session) error {
		var err error
		res, err = s.Query(spec)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// QueryBatch answers a batch on the identified session, paging it in when
// evicted.
func (m *Manager) QueryBatch(id string, specs []convex.Spec) ([]BatchItem, error) {
	var items []BatchItem
	err := m.withSession(id, func(s *Session) error {
		var err error
		items, err = s.QueryBatch(specs)
		return err
	})
	if err != nil {
		return nil, err
	}
	return items, nil
}

// SessionStatus reports the identified session's ledger snapshot, paging
// it in when evicted.
func (m *Manager) SessionStatus(id string) (SessionStatus, error) {
	var st SessionStatus
	err := m.withSession(id, func(s *Session) error {
		st = s.Status()
		return nil
	})
	return st, err
}

// SessionTranscript serializes the identified session's transcript
// record, paging it in when evicted.
func (m *Manager) SessionTranscript(id string) ([]byte, error) {
	var b []byte
	err := m.withSession(id, func(s *Session) error {
		var err error
		b, err = s.TranscriptJSON()
		return err
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// CheckpointSession forces a durable snapshot of the identified session,
// paging it in when evicted.
func (m *Manager) CheckpointSession(id string) error {
	return m.withSession(id, func(s *Session) error { return s.Checkpoint() })
}
