package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/convex"
	"repro/internal/persist"
)

// batchStream is a query stream with in-batch duplicates, cross-batch
// repeats, an unknown kind, and malformed params — every partition class
// the batch pipeline distinguishes.
func batchStream() []convex.Spec {
	return []convex.Spec{
		countingSpec(0),
		{Kind: "squared"},
		countingSpec(0), // in-batch duplicate of an earlier miss
		{Kind: "logistic", Params: json.RawMessage(`{"temp":0.5}`)},
		{Kind: "nope"}, // unknown kind
		{Kind: "logistic", Params: json.RawMessage(`{"tempp":1}`)},  // unknown field
		{Kind: "logistic", Params: json.RawMessage(`{"margin":0}`)}, // canonical duplicate of the temp:0.5 default
		countingSpec(1),
		{Kind: "hinge"},
		countingSpec(2),
	}
}

// TestQueryBatchEquivalence is the batch acceptance invariant, per
// accountant: a QueryBatch of N specs is bit-identical — released answers,
// per-item errors, ⊥/⊤/cached disposition, budget ledger, and transcript
// bytes — to the same N specs issued as sequential Query calls.
func TestQueryBatchEquivalence(t *testing.T) {
	for _, acct := range []string{"basic", "advanced", "zcdp"} {
		t.Run(acct, func(t *testing.T) {
			defaults := SessionParams{
				Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 8, TBudget: 4,
				Accountant: acct,
			}
			specs := batchStream()

			seqM := durableManager(t, "", 1, 9, defaults)
			defer seqM.Shutdown()
			seqS, err := seqM.CreateSession(SessionParams{})
			if err != nil {
				t.Fatal(err)
			}
			seqItems := make([]BatchItem, len(specs))
			for i, q := range specs {
				res, err := seqS.Query(q)
				if err != nil {
					seqItems[i].Error = err.Error()
				} else {
					seqItems[i].Result = res
				}
			}

			batM := durableManager(t, "", 1, 9, defaults)
			defer batM.Shutdown()
			batS, err := batM.CreateSession(SessionParams{})
			if err != nil {
				t.Fatal(err)
			}
			batItems, err := batS.QueryBatch(specs)
			if err != nil {
				t.Fatal(err)
			}

			for i := range specs {
				a, b := seqItems[i], batItems[i]
				if a.Error != b.Error {
					t.Fatalf("item %d: sequential error %q, batch error %q", i, a.Error, b.Error)
				}
				if a.Result == nil {
					continue
				}
				if a.Result.Loss != b.Result.Loss ||
					a.Result.Top != b.Result.Top || a.Result.Cached != b.Result.Cached ||
					a.Result.EpsSpent != b.Result.EpsSpent || a.Result.DeltaSpent != b.Result.DeltaSpent ||
					a.Result.RhoSpent != b.Result.RhoSpent {
					t.Fatalf("item %d differs:\nseq   %+v\nbatch %+v", i, a.Result, b.Result)
				}
				answersEqual(t, fmt.Sprintf("item %d", i), a.Result.Answer, b.Result.Answer)
			}

			// Ledger equivalence: identical composed spend, remaining
			// budget, and counters.
			seqSt, batSt := seqS.Status(), batS.Status()
			seqSt.ID, batSt.ID = "", ""
			seqSt.Created, batSt.Created = seqS.created, seqS.created
			if seqSt != batSt {
				t.Fatalf("status differs:\nseq   %+v\nbatch %+v", seqSt, batSt)
			}

			// Transcript equivalence, byte for byte.
			seqTr, err := seqS.TranscriptJSON()
			if err != nil {
				t.Fatal(err)
			}
			batTr, err := batS.TranscriptJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(seqTr) != string(batTr) {
				t.Fatalf("transcripts differ:\n%s\n%s", seqTr, batTr)
			}
		})
	}
}

// TestQueryBatchDurableEquivalence pins the durability economy: the batch
// path checkpoints once at the end of the batch (write-ahead for every
// spend in it), and after a forced checkpoint on both sides its on-disk
// mechanism state and transcript decode identically to the sequential
// path's. The batch writer's savedSeq must cover the whole transcript —
// the single write made every spend durable.
func TestQueryBatchDurableEquivalence(t *testing.T) {
	defaults := SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 8, TBudget: 4}
	specs := batchStream()

	dirSeq, dirBat := t.TempDir(), t.TempDir()
	seqM := durableManager(t, dirSeq, 1, 9, defaults)
	defer seqM.Shutdown()
	seqS, err := seqM.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range specs {
		seqS.Query(q) // per-item errors are fine; they match the batch path
	}

	batM := durableManager(t, dirBat, 1, 9, defaults)
	defer batM.Shutdown()
	batS, err := batM.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batS.QueryBatch(specs); err != nil {
		t.Fatal(err)
	}
	// The batch's one trailing write must already have made every recorded
	// event durable — no spend waits for a later checkpoint.
	batS.saveMu.Lock()
	saved := batS.savedSeq
	batS.saveMu.Unlock()
	if want := len(batS.rec.T.Events); saved < want {
		t.Fatalf("batch left savedSeq %d < %d recorded events", saved, want)
	}

	// The sequential file legitimately lags by a ⊥-only tail (it
	// checkpoints per ⊤, the batch at the end); force both to a final
	// checkpoint before comparing on-disk state.
	if err := seqS.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := batS.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seqState := loadState(t, seqM, seqS.ID())
	batState := loadState(t, batM, batS.ID())
	if !jsonEqual(t, seqState.Core, batState.Core) {
		t.Fatal("core snapshots differ between sequential and batch runs")
	}
	if !jsonEqual(t, seqState.Transcript, batState.Transcript) {
		t.Fatal("persisted transcripts differ between sequential and batch runs")
	}
}

func loadState(t *testing.T, m *Manager, id string) *persist.SessionState {
	t.Helper()
	st, err := m.cfg.Store.LoadSession(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ja) == string(jb)
}

// TestQueryBatchConcurrent drives overlapping batches from concurrent
// goroutines (run under -race in CI): the mechanism answers each distinct
// canonical query exactly once regardless of which batch gets there first,
// and every duplicate resolves to a byte-identical cached answer.
func TestQueryBatchConcurrent(t *testing.T) {
	m := testManager(t, Limits{})
	s, err := m.CreateSession(SessionParams{K: 40})
	if err != nil {
		t.Fatal(err)
	}
	specs := []convex.Spec{
		countingSpec(0), countingSpec(1), {Kind: "squared"}, countingSpec(2),
	}
	const workers = 4
	results := make([][]BatchItem, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			items, err := s.QueryBatch(specs)
			if err != nil {
				t.Errorf("batch %d: %v", w, err)
				return
			}
			results[w] = items
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for w := 1; w < workers; w++ {
		for i := range specs {
			if results[w][i].Error != "" || results[0][i].Error != "" {
				t.Fatalf("batch %d item %d errored: %q %q", w, i, results[0][i].Error, results[w][i].Error)
			}
			answersEqual(t, fmt.Sprintf("batch %d item %d", w, i),
				results[0][i].Result.Answer, results[w][i].Result.Answer)
		}
	}
	// Exactly one mechanism answer per distinct canonical query.
	if st := s.Status(); st.QueriesUsed != len(specs) {
		t.Fatalf("mechanism answered %d queries for %d distinct specs", st.QueriesUsed, len(specs))
	}
}

// TestHTTPBatch covers the batch endpoint end to end: partition counters,
// per-item errors, ordering, and the request-validation failure modes.
func TestHTTPBatch(t *testing.T) {
	_, base := startServer(t)
	var sess SessionStatus
	if st := doJSON(t, "POST", base+"/v1/sessions", map[string]any{"k": 8, "tbudget": 4}, &sess); st != 201 {
		t.Fatalf("create: status %d", st)
	}
	url := base + "/v1/sessions/" + sess.ID + "/queries:batch"

	var resp BatchResponse
	body := map[string]any{"queries": []any{
		map[string]any{"kind": "positive", "params": map[string]any{"coord": 0}},
		map[string]any{"kind": "positive", "params": map[string]any{"coord": 0}},
		map[string]any{"kind": "squared"},
		map[string]any{"kind": "nope"},
	}}
	if st := doJSON(t, "POST", url, body, &resp); st != 200 {
		t.Fatalf("batch: status %d", st)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(resp.Results))
	}
	if resp.Results[0].Result == nil || resp.Results[0].Result.Cached {
		t.Fatalf("item 0 should be a fresh answer: %+v", resp.Results[0])
	}
	if resp.Results[1].Result == nil || !resp.Results[1].Result.Cached {
		t.Fatalf("item 1 should be an in-batch cache hit: %+v", resp.Results[1])
	}
	if resp.Results[3].Error == "" {
		t.Fatal("item 3 (unknown kind) should carry a per-item error")
	}
	if resp.CacheHits != 1 || resp.Errors != 1 {
		t.Fatalf("summary %+v, want 1 cache hit and 1 error", resp)
	}

	// A second identical batch is all hits.
	var again BatchResponse
	if st := doJSON(t, "POST", url, body, &again); st != 200 || again.CacheHits != 3 {
		t.Fatalf("repeat batch: status %d, %+v; want 3 cache hits", st, again)
	}

	// Validation and routing failures.
	var apiErr struct {
		Error string `json:"error"`
	}
	if st := doJSON(t, "POST", url, map[string]any{"queries": []any{}}, &apiErr); st != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", st)
	}
	big := make([]any, MaxBatchSize+1)
	for i := range big {
		big[i] = map[string]any{"kind": "squared"}
	}
	if st := doJSON(t, "POST", url, map[string]any{"queries": big}, &apiErr); st != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", st)
	}
	if st := doJSON(t, "POST", base+"/v1/sessions/s-999999/queries:batch", body, &apiErr); st != http.StatusNotFound {
		t.Fatalf("unknown session batch: status %d", st)
	}
}
