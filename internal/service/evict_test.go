package service

// evict_test.go pins the idle-eviction layer's contract: an evicted
// session pages back in and continues the interaction bit-identically to
// one that never left memory (the golden test, per accountant and per
// write path), residency stays bounded under -max-resident and -idle-ttl,
// and the evict / page-in / query races resolve without losing answers
// (the -race hammer).

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/sample"
)

// evictManager builds a durable manager with the given residency knobs.
func evictManager(t *testing.T, dir string, wal bool, maxResident int, idleTTL time.Duration) *Manager {
	t.Helper()
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Data:        durableData(t, 1),
		Source:      sample.New(9),
		Defaults:    SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 40, TBudget: 6},
		Store:       st,
		WAL:         wal,
		MaxResident: maxResident,
		IdleTTL:     idleTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEvictPageInGolden is the tentpole invariant, per accountant and per
// write path: a session that is evicted mid-stream and paged back in on
// the next touch answers the remaining queries bit-identically — answers,
// ⊥/⊤ pattern, budget spend, final status, transcript bytes — to a session
// that stayed resident throughout.
func TestEvictPageInGolden(t *testing.T) {
	for _, wal := range []bool{false, true} {
		for _, acct := range []string{"basic", "advanced", "zcdp"} {
			t.Run(fmt.Sprintf("wal=%v/%s", wal, acct), func(t *testing.T) {
				defaults := SessionParams{
					Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 12, TBudget: 6,
					Accountant: acct,
				}
				specs := mixedSpecs(12)

				// Reference: one uninterrupted in-memory run.
				ref := durableManager(t, "", 1, 9, defaults)
				defer ref.Shutdown()
				refSess, err := ref.CreateSession(SessionParams{})
				if err != nil {
					t.Fatal(err)
				}
				refResults := make([]*QueryResult, len(specs))
				for i, q := range specs {
					if refResults[i], err = refSess.Query(q); err != nil {
						t.Fatalf("reference query %d: %v", i, err)
					}
				}

				// Subject: same stream, but the session is forced out of
				// residency twice mid-stream; m.Query pages it back in.
				var m *Manager
				if wal {
					m = walManager(t, t.TempDir(), 1, 9, defaults, 0)
				} else {
					m = durableManager(t, t.TempDir(), 1, 9, defaults)
				}
				defer m.Shutdown()
				s, err := m.CreateSession(SessionParams{})
				if err != nil {
					t.Fatal(err)
				}
				id := s.ID()
				for i, q := range specs {
					if i == 4 || i == 9 {
						if err := m.Evict(id); err != nil {
							t.Fatalf("evict before query %d: %v", i, err)
						}
						if got := m.ResidentSessions(); got != 0 {
							t.Fatalf("after evict: %d resident sessions, want 0", got)
						}
					}
					res, err := m.Query(id, q)
					if err != nil {
						t.Fatalf("query %d: %v", i, err)
					}
					sameResult(t, fmt.Sprintf("query %d", i), refResults[i], res)
				}

				refStatus, evStatus := refSess.Status(), SessionStatus{}
				if evStatus, err = m.SessionStatus(id); err != nil {
					t.Fatal(err)
				}
				// Ids differ (independent managers) and the eviction cycles
				// re-resolve cached repeats; everything budget-shaped must
				// match exactly.
				if refStatus.EpsSpent != evStatus.EpsSpent || refStatus.DeltaSpent != evStatus.DeltaSpent ||
					refStatus.EpsRemaining != evStatus.EpsRemaining ||
					refStatus.QueriesUsed != evStatus.QueriesUsed || refStatus.UpdatesUsed != evStatus.UpdatesUsed ||
					refStatus.Exhausted != evStatus.Exhausted {
					t.Fatalf("status diverged:\nref  %+v\nevic %+v", refStatus, evStatus)
				}

				// Transcript bytes: identical up to the session id embedded in
				// the record.
				refT, err := refSess.TranscriptJSON()
				if err != nil {
					t.Fatal(err)
				}
				evT, err := m.SessionTranscript(id)
				if err != nil {
					t.Fatal(err)
				}
				refS := strings.ReplaceAll(string(refT), refSess.ID(), "SID")
				evS := strings.ReplaceAll(string(evT), id, "SID")
				if refS != evS {
					t.Fatalf("transcripts diverged:\nref  %s\nevic %s", refS, evS)
				}
			})
		}
	}
}

// TestMaxResidentLRU pins the admission sweep: with MaxResident = 2 the
// manager keeps at most two live sessions in memory while all stay open
// and answerable, and it is the least-recently-touched session that pages
// out.
func TestMaxResidentLRU(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Data:        durableData(t, 1),
		Source:      sample.New(9),
		Defaults:    SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 40, TBudget: 6},
		Store:       st,
		MaxResident: 2,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	var ids []string
	for i := 0; i < 5; i++ {
		s, err := m.CreateSession(SessionParams{})
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids = append(ids, s.ID())
		if got := m.ResidentSessions(); got > 2 {
			t.Fatalf("after create %d: %d resident, cap is 2", i, got)
		}
	}
	if got := m.OpenSessions(); got != 5 {
		t.Fatalf("open sessions = %d, want 5", got)
	}
	if got := m.ResidentSessions(); got != 2 {
		t.Fatalf("resident sessions = %d, want 2", got)
	}

	// The two newest sessions are the resident ones; the oldest is paged
	// out and must answer anyway (transparent page-in), evicting the
	// now-least-recently-touched resident.
	if _, err := m.Query(ids[0], countingSpec(0)); err != nil {
		t.Fatalf("query of paged-out session: %v", err)
	}
	if got := m.ResidentSessions(); got != 2 {
		t.Fatalf("after page-in: %d resident, want 2", got)
	}
	m.mu.Lock()
	_, oldestResident := m.sessions[ids[0]]
	m.mu.Unlock()
	if !oldestResident {
		t.Fatalf("just-touched session %s should be resident", ids[0])
	}

	// The residency cycle is visible in the metrics.
	var ev, pi float64
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Samples {
			switch fam.Name {
			case "pmwcm_session_evictions_total":
				ev = s.Value
			case "pmwcm_session_pageins_total":
				pi = s.Value
			}
		}
	}
	if ev < 4 || pi < 1 {
		t.Fatalf("metrics: evictions=%v pageins=%v, want >=4 and >=1", ev, pi)
	}
}

// TestIdleTTLJanitor pins the idle sweep: an untouched session is folded
// out of memory within a few TTLs and still answers afterwards.
func TestIdleTTLJanitor(t *testing.T) {
	m := evictManager(t, t.TempDir(), false, 0, 80*time.Millisecond)
	defer m.Shutdown()
	s, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID()
	deadline := time.Now().Add(5 * time.Second)
	for m.ResidentSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session %s still resident after 5s with an 80ms idle TTL", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := m.OpenSessions(); got != 1 {
		t.Fatalf("open sessions = %d, want 1 (eviction must not close)", got)
	}
	if _, err := m.Query(id, countingSpec(0)); err != nil {
		t.Fatalf("query after idle eviction: %v", err)
	}
}

// TestLazyRecovery pins the residency-capped startup path: a fresh manager
// over a state directory full of live sessions restores only up to the cap
// eagerly and pages the rest in on first touch, with answers identical to
// an eager restart.
func TestLazyRecovery(t *testing.T) {
	dir := t.TempDir()
	m1 := evictManager(t, dir, false, 0, 0)
	var ids []string
	for i := 0; i < 4; i++ {
		s, err := m1.CreateSession(SessionParams{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Query(countingSpec(i % 2)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	m1.Shutdown()

	m2 := evictManager(t, dir, false, 2, 0)
	defer m2.Shutdown()
	if got := m2.OpenSessions(); got != 4 {
		t.Fatalf("recovered open sessions = %d, want 4", got)
	}
	if got := m2.ResidentSessions(); got != 0 {
		// Snapshot-only live sessions all recover lazily; none is resident
		// until touched.
		t.Fatalf("recovered resident sessions = %d, want 0", got)
	}
	for i, id := range ids {
		res, err := m2.Query(id, countingSpec(i%2))
		if err != nil {
			t.Fatalf("query recovered session %s: %v", id, err)
		}
		if !res.Cached {
			t.Fatalf("repeat of session %s's answered query was not served from the rebuilt cache", id)
		}
	}
	if got := m2.ResidentSessions(); got != 2 {
		t.Fatalf("resident sessions after touches = %d, want cap 2", got)
	}
}

// TestCreateSessionPinnedID pins the router-facing creation contract:
// caller-chosen ids round-trip, collide with ErrSessionExists (including
// against paged-out sessions), and hostile names are rejected before
// touching the store.
func TestCreateSessionPinnedID(t *testing.T) {
	m := evictManager(t, t.TempDir(), false, 0, 0)
	defer m.Shutdown()
	s, err := m.CreateSession(SessionParams{ID: "rt-00deadbeef00"})
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != "rt-00deadbeef00" {
		t.Fatalf("session id = %q, want the pinned one", s.ID())
	}
	if _, err := m.CreateSession(SessionParams{ID: "rt-00deadbeef00"}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate pinned id: err = %v, want ErrSessionExists", err)
	}
	if err := m.Evict("rt-00deadbeef00"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSession(SessionParams{ID: "rt-00deadbeef00"}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("pinned id colliding with a paged-out session: err = %v, want ErrSessionExists", err)
	}
	for _, bad := range []string{"../escape", "a b", "x/y", strings.Repeat("q", 200)} {
		if _, err := m.CreateSession(SessionParams{ID: bad}); err == nil {
			t.Fatalf("hostile id %q was accepted", bad)
		}
	}
	// A pinned id must not consume manager-issued sequence numbers.
	auto, err := m.CreateSession(SessionParams{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.ID() != "s-000001" {
		t.Fatalf("first auto id = %q, want s-000001", auto.ID())
	}
}

// TestEvictConcurrentHammer races queries, status reads, forced evictions,
// and page-ins on one session id. Run under -race this is the layer's
// linearizability smoke: every operation must either succeed or fail with
// a typed sentinel, never corrupt counts or deadlock.
func TestEvictConcurrentHammer(t *testing.T) {
	for _, wal := range []bool{false, true} {
		t.Run(fmt.Sprintf("wal=%v", wal), func(t *testing.T) {
			m := evictManager(t, t.TempDir(), wal, 0, 0)
			s, err := m.CreateSession(SessionParams{})
			if err != nil {
				t.Fatal(err)
			}
			id := s.ID()

			const workers = 4
			iters := 30
			if testing.Short() {
				iters = 8
			}
			var wg sync.WaitGroup
			errCh := make(chan error, workers*3*iters)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if _, err := m.Query(id, countingSpec((w+i)%2)); err != nil && !errors.Is(err, ErrBudgetExhausted) {
							errCh <- fmt.Errorf("query: %w", err)
						}
					}
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if err := m.Evict(id); err != nil && !errors.Is(err, ErrSessionNotFound) {
							errCh <- fmt.Errorf("evict: %w", err)
						}
					}
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if _, err := m.SessionStatus(id); err != nil {
							errCh <- fmt.Errorf("status: %w", err)
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}

			// The dust settles into a consistent ledger: one open session,
			// resident count 0 or 1, and a transcript the restore path still
			// verifies (page in once more to prove it).
			if got := m.OpenSessions(); got != 1 {
				t.Fatalf("open sessions = %d, want 1", got)
			}
			if got := m.ResidentSessions(); got != 0 && got != 1 {
				t.Fatalf("resident sessions = %d, want 0 or 1", got)
			}
			if err := m.Evict(id); err != nil {
				t.Fatalf("final evict: %v", err)
			}
			if _, err := m.SessionStatus(id); err != nil {
				t.Fatalf("final page-in: %v", err)
			}
			m.Shutdown()
		})
	}
}
