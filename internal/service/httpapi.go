package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/mech"
	"repro/internal/obs"
)

// httpapi.go is the HTTP/JSON front end over a Manager. The API surface:
//
//	GET    /healthz                      — liveness: uptime, open-session count, durability
//	GET    /version                      — build identity (module version, VCS revision)
//	GET    /metrics                      — observability registry (Prometheus text; ?format=json),
//	                                       present only when the manager has a metrics registry
//	GET    /v1/losses                    — registered loss kinds
//	GET    /v1/accountants               — registered privacy accountants
//	GET    /v1/defaults                  — merged default session parameters
//	POST   /v1/sessions                  — create a session (body: SessionParams, all fields optional)
//	GET    /v1/sessions                  — list session statuses
//	GET    /v1/sessions/{id}             — one session's status
//	POST   /v1/sessions/{id}/query       — answer a query (body: {"kind": ..., "params": {...}})
//	POST   /v1/sessions/{id}/queries:batch — answer a batch (body: {"queries": [spec, ...]})
//	POST   /v1/sessions/{id}/snapshot    — force a durable checkpoint of the session
//	GET    /v1/sessions/{id}/transcript  — the session's audit transcript
//	DELETE /v1/sessions/{id}             — close the session
//
// Every response is JSON. Failures carry {"error": ...} with a status code
// mapped from the service's typed errors: 404 unknown session, 409 closed,
// 429 budget exhausted, 503 at the session limit or during shutdown, 501
// snapshot without a state directory, 500 checkpoint write failure, 400
// for malformed requests and unknown losses.
//
// Restore has no endpoint on purpose: sessions are restored by the manager
// at startup from its state directory (see Config.Store), never by analyst
// request — an analyst who could re-load an older snapshot would rewind
// the privacy ledger and re-spend budget the mechanism already released.

// NewHandler returns the HTTP handler serving m.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Health{
			OK:               true,
			UptimeSec:        time.Since(m.Started()).Seconds(),
			OpenSessions:     m.OpenSessions(),
			ResidentSessions: m.ResidentSessions(),
			Universe:         m.Universe().String(),
			Durable:          m.Durable(),
			StateDir:         m.StateDir(),
			WAL:              m.WALMode(),
		})
	})

	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.Version())
	})

	if reg := m.Metrics(); reg != nil {
		mux.Handle("GET /metrics", obs.MetricsHandler(reg))
	}

	mux.HandleFunc("GET /v1/losses", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"kinds": convex.Kinds()})
	})

	mux.HandleFunc("GET /v1/accountants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"accountants": mech.AccountantNames(),
			"default":     mech.DefaultAccountant,
		})
	})

	mux.HandleFunc("GET /v1/defaults", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Defaults())
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req SessionParams
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		s, err := m.CreateSession(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.Status())
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": m.Statuses()})
	})

	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.SessionStatus(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /v1/sessions/{id}/query", func(w http.ResponseWriter, r *http.Request) {
		var spec convex.Spec
		if err := decodeBody(w, r, &spec); err != nil {
			writeError(w, err)
			return
		}
		res, err := m.Query(r.PathValue("id"), spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("POST /v1/sessions/{id}/queries:batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, fmt.Errorf("service: batch needs at least one query"))
			return
		}
		if len(req.Queries) > MaxBatchSize {
			writeError(w, fmt.Errorf("service: batch of %d queries exceeds limit %d", len(req.Queries), MaxBatchSize))
			return
		}
		items, err := m.QueryBatch(r.PathValue("id"), req.Queries)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, newBatchResponse(items))
	})

	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if err := m.CheckpointSession(r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"saved": true})
	})

	mux.HandleFunc("GET /v1/sessions/{id}/transcript", func(w http.ResponseWriter, r *http.Request) {
		data, err := m.SessionTranscript(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.CloseSession(r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"closed": true})
	})

	return mux
}

// MaxBatchSize caps the number of queries one batch request may carry.
const MaxBatchSize = 1024

// Health is the body of GET /healthz.
type Health struct {
	// OK is always true when the server can respond at all.
	OK bool `json:"ok"`
	// UptimeSec is the seconds since the manager was constructed.
	UptimeSec float64 `json:"uptime_sec"`
	// OpenSessions counts currently open sessions; ResidentSessions the
	// subset holding memory (the rest is evicted to the store and paged in
	// on touch).
	OpenSessions     int `json:"open_sessions"`
	ResidentSessions int `json:"resident_sessions"`
	// Universe describes the public data universe.
	Universe string `json:"universe"`
	// Durable reports whether sessions checkpoint to a state directory;
	// StateDir is that directory ("" when memory-only).
	Durable  bool   `json:"durable"`
	StateDir string `json:"state_dir,omitempty"`
	// WAL reports whether the write path runs in write-ahead-log mode
	// (per-session logs with group-committed fsyncs) rather than
	// snapshot-per-⊤.
	WAL bool `json:"wal,omitempty"`
}

// BatchRequest is the body of POST /v1/sessions/{id}/queries:batch.
type BatchRequest struct {
	// Queries are the specs to answer, in submission order.
	Queries []convex.Spec `json:"queries"`
}

// BatchResponse is the body of a successful batch reply.
type BatchResponse struct {
	// Results has one entry per submitted query, in submission order.
	Results []BatchItem `json:"results"`
	// CacheHits counts items served from the answer cache (zero spend);
	// Tops counts items whose answer spent an oracle call; Errors counts
	// failed items.
	CacheHits int `json:"cache_hits"`
	Tops      int `json:"tops"`
	Errors    int `json:"errors"`
}

// newBatchResponse summarizes items into the HTTP reply.
func newBatchResponse(items []BatchItem) BatchResponse {
	resp := BatchResponse{Results: items}
	for _, it := range items {
		switch {
		case it.Error != "":
			resp.Errors++
		case it.Result.Cached:
			resp.CacheHits++
		case it.Result.Top:
			resp.Tops++
		}
	}
	return resp
}

// maxBodyBytes caps request bodies; session and query payloads are tiny by
// design, so anything larger is abuse.
const maxBodyBytes = 1 << 20

// decodeBody strictly decodes the request body, allowing an empty body to
// mean the zero value (so `curl -X POST` without a payload works for
// session creation with defaults).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("service: decoding request body: %w", err)
	}
	return nil
}

// writeJSON serializes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps a service error to its HTTP status.
func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
}

// statusFor maps typed service errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionClosed), errors.Is(err, ErrSessionExists):
		return http.StatusConflict
	case errors.Is(err, ErrBudgetExhausted):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrTooManySessions), errors.Is(err, ErrShuttingDown), errors.Is(err, ErrPagedOut):
		// ErrPagedOut surfaces only when page-in retries were exhausted
		// under extreme eviction pressure — a transient overload, so the
		// client should retry.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotDurable):
		// Snapshot requested of a memory-only server: the feature is not
		// configured, which is the server's circumstance, not the client's
		// mistake.
		return http.StatusNotImplemented
	case errors.Is(err, ErrCheckpoint):
		// The durable write failed; the session state is intact in memory.
		return http.StatusInternalServerError
	case errors.Is(err, core.ErrInvalidWorkers), errors.Is(err, mech.ErrUnknownAccountant),
		errors.Is(err, core.ErrUnknownEngine), errors.Is(err, core.ErrNeedsFactored),
		errors.Is(err, core.ErrNeedsSupport):
		// Malformed session request (e.g. "workers": -1, an unregistered
		// accountant name, or an engine the universe or loss cannot
		// satisfy): a client error, listed explicitly so the mapping is
		// load-bearing, not accidental.
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}
