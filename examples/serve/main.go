// Serve example: drive the interactive query-serving subsystem end-to-end
// over HTTP.
//
// Part 1 starts the service in-process on an ephemeral port — exactly what
// `pmwcm serve` runs — then acts as the analyst of the paper's accuracy
// game (Figure 1) using nothing but HTTP/JSON: it creates a session with a
// small query budget, submits counting and convex-minimization queries
// named from the loss registry, watches the budget ledger move as the
// sparse vector answers ⊥/⊤, prints the audit transcript, and finally runs
// into the budget-exhaustion rejection.
//
// Part 2 demonstrates durable sessions (`pmwcm serve -state-dir`):
// snapshot → kill → restart → continue. A session answers half its query
// stream against a durable server, the server is killed and a fresh one is
// started over the same state directory, the restored session answers the
// remaining half — and the program asserts every continued answer is
// bit-identical to an uninterrupted reference run.
//
// Part 3 demonstrates the high-throughput read path: the batch endpoint
// answers many queries per round trip, repeats are served from the
// zero-spend answer cache (budget and noise streams untouched), and the
// spec canonicalization means any spelling of the same query instance
// hits the same cache entry.
//
// Part 4 demonstrates the observability layer: the server's GET /metrics
// endpoint is scraped over HTTP, the cache-hit counter is asserted to
// move when a query repeats, and the per-session spend gauge is asserted
// to agree exactly with the session status endpoint — metrics observe the
// ledger, they never move it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/sample"
	"repro/internal/service"
	"repro/internal/universe"
)

func main() {
	interactiveDemo()
	durableDemo()
	readPathDemo()
	metricsDemo()
}

func interactiveDemo() {
	fmt.Println("=== Part 1: the interactive protocol over HTTP ===")
	// --- Server side: the operator's half, normally `pmwcm serve`. ---
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	src := sample.New(42)
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.SampleFrom(src.Split(), pop, 200000)

	mgr, err := service.New(service.Config{
		Data:   data,
		Source: src.Split(),
		Defaults: service.SessionParams{
			Eps: 1, Delta: 1e-6, Alpha: 0.02, K: 100,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Shutdown()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: service.NewHandler(mgr)}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("service listening on", base)

	// --- Analyst side: everything below is plain HTTP/JSON. ---

	// Create a session with a tiny budget so we can watch it run out.
	var sess struct {
		ID          string  `json:"id"`
		QueriesMax  int     `json:"queries_max"`
		UpdatesMax  int     `json:"updates_max"`
		EpsBudget   float64 `json:"eps_budget"`
		DeltaBudget float64 `json:"delta_budget"`
	}
	post(base+"/v1/sessions", map[string]any{"k": 5}, &sess)
	fmt.Printf("session %s: K=%d queries, T=%d updates, budget (ε=%g, δ=%g)\n",
		sess.ID, sess.QueriesMax, sess.UpdatesMax, sess.EpsBudget, sess.DeltaBudget)

	// Ask K queries, mixing counting queries with genuine CM queries.
	queries := []map[string]any{
		{"kind": "positive", "params": map[string]any{"coord": 0}},
		{"kind": "halfspace", "params": map[string]any{"w": []float64{1, 1, 0}, "threshold": 0}},
		{"kind": "marginal", "params": map[string]any{"coords": []int{0, 1}}},
		{"kind": "logistic", "params": map[string]any{"temp": 0.5}},
		{"kind": "squared"},
	}
	fmt.Println("\n#  loss                                      top    ε-spent   answer")
	for i, q := range queries {
		var res struct {
			Loss        string    `json:"loss"`
			Answer      []float64 `json:"answer"`
			Top         bool      `json:"top"`
			EpsSpent    float64   `json:"eps_spent"`
			QueriesUsed int       `json:"queries_used"`
		}
		post(base+"/v1/sessions/"+sess.ID+"/query", q, &res)
		fmt.Printf("%d  %-40s  %-5v  %.4f    %.3v\n", i+1, res.Loss, res.Top, res.EpsSpent, res.Answer)
	}

	// The K+1-st *fresh* query must be rejected: the budget ledger is
	// empty. (A repeat of an answered query would still work — it is
	// served from the answer cache; Part 3 demonstrates that.)
	req, _ := json.Marshal(map[string]any{"kind": "positive", "params": map[string]any{"coord": 1}})
	resp, err := http.Post(base+"/v1/sessions/"+sess.ID+"/query", "application/json", bytes.NewReader(req))
	if err != nil {
		log.Fatal(err)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	fmt.Printf("\nfresh query %d → HTTP %d: %s\n", len(queries)+1, resp.StatusCode, apiErr.Error)

	// A repeat of an already-answered query keeps working from the cache,
	// even on the exhausted session — re-releasing recorded bytes is pure
	// post-processing and spends nothing.
	var cached struct {
		Cached   bool    `json:"cached"`
		EpsSpent float64 `json:"eps_spent"`
	}
	post(base+"/v1/sessions/"+sess.ID+"/query", queries[0], &cached)
	fmt.Printf("repeat of query 1 → cached=%v, ε-spent=%g (zero-cost post-processing)\n",
		cached.Cached, cached.EpsSpent)

	// Pull the audit transcript: every exchange plus cumulative spend.
	var tr struct {
		Tops       int     `json:"tops"`
		CumEps     float64 `json:"cum_eps"`
		EpsBound   float64 `json:"eps_bound"`
		Transcript struct {
			Events []struct {
				Query string `json:"query"`
				Top   bool   `json:"top"`
			} `json:"events"`
		} `json:"transcript"`
	}
	get(base+"/v1/sessions/"+sess.ID+"/transcript", &tr)
	fmt.Printf("\ntranscript: %d events, %d ⊤; oracle spend ε=%.4f, total bound ε≤%.4f\n",
		len(tr.Transcript.Events), tr.Tops, tr.CumEps, tr.EpsBound)

	// Close the session; further queries now fail with 409.
	del(base + "/v1/sessions/" + sess.ID)
	resp, err = http.Post(base+"/v1/sessions/"+sess.ID+"/query", "application/json", bytes.NewReader(req))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("after close, query → HTTP %d\n", resp.StatusCode)
}

// world is one deterministic server stack. Rebuilding it with the same
// seed — as an operator restarting `pmwcm serve` with the same flags does
// — reproduces the identical private dataset and session-source.
func newWorld(seed int64, dir string) (*service.Manager, *http.Server, string) {
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	src := sample.New(seed)
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.SampleFrom(src.Split(), pop, 200000)
	cfg := service.Config{
		Data:   data,
		Source: src.Split(),
		Defaults: service.SessionParams{
			Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 12, TBudget: 6,
		},
	}
	if dir != "" {
		store, err := persist.Open(dir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = store
	}
	// Every world gets a metrics registry and the request-metrics
	// middleware, exactly as `pmwcm serve` wires them. Part 2's
	// bit-identity assertions still hold: metrics observe the mechanism,
	// they never perturb it.
	cfg.Metrics = obs.NewRegistry()
	mgr, err := service.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	handler := obs.Middleware(cfg.Metrics, service.NewHandler(mgr), obs.MiddlewareOptions{})
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln)
	return mgr, httpSrv, "http://" + ln.Addr().String()
}

// queryResult is the part of an answer the demo compares bitwise.
type queryResult struct {
	Loss         string    `json:"loss"`
	Answer       []float64 `json:"answer"`
	Top          bool      `json:"top"`
	EpsRemaining float64   `json:"eps_remaining"`
	UpdatesUsed  int       `json:"updates_used"`
}

func durableDemo() {
	fmt.Println("\n=== Part 2: durable sessions — snapshot → kill → restart → continue ===")
	stream := []map[string]any{
		{"kind": "positive", "params": map[string]any{"coord": 0}},
		{"kind": "squared"},
		{"kind": "logistic", "params": map[string]any{"temp": 0.5}},
		{"kind": "positive", "params": map[string]any{"coord": 1}},
		{"kind": "squared"},
		{"kind": "halfspace", "params": map[string]any{"w": []float64{1, 1, 0}, "threshold": 0}},
		{"kind": "logistic", "params": map[string]any{"temp": 0.5}},
		{"kind": "marginal", "params": map[string]any{"coords": []int{0, 1}}},
	}
	const cut = 4

	// Reference: the same world, never interrupted.
	refMgr, refSrv, refBase := newWorld(42, "")
	defer refMgr.Shutdown()
	defer refSrv.Close()
	var refSess struct {
		ID string `json:"id"`
	}
	post(refBase+"/v1/sessions", map[string]any{}, &refSess)
	refAnswers := make([]queryResult, len(stream))
	for i, q := range stream {
		post(refBase+"/v1/sessions/"+refSess.ID+"/query", q, &refAnswers[i])
	}

	// Durable world: same seed, with a state directory.
	dir, err := os.MkdirTemp("", "pmwcm-state-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr1, srv1, base1 := newWorld(42, dir)
	var sess struct {
		ID string `json:"id"`
	}
	post(base1+"/v1/sessions", map[string]any{}, &sess)
	fmt.Printf("durable session %s in %s\n", sess.ID, dir)
	for i := 0; i < cut; i++ {
		var res queryResult
		post(base1+"/v1/sessions/"+sess.ID+"/query", stream[i], &res)
		assertSame(i, refAnswers[i], res)
	}
	// Force a snapshot (⊤ answers already checkpointed themselves; this
	// also captures the ⊥-answer tail), then kill the server.
	var snap struct {
		Saved bool `json:"saved"`
	}
	post(base1+"/v1/sessions/"+sess.ID+"/snapshot", nil, &snap)
	srv1.Close()
	mgr1.Shutdown()
	fmt.Printf("answered %d/%d queries, snapshot saved=%v, server killed\n", cut, len(stream), snap.Saved)

	// Restart: a fresh manager and HTTP server over the same state
	// directory recover the session; the analyst continues where it left
	// off, against a new base URL.
	mgr2, srv2, base2 := newWorld(42, dir)
	defer mgr2.Shutdown()
	defer srv2.Close()
	fmt.Printf("restarted: %d live session(s) recovered\n", mgr2.OpenSessions())
	for i := cut; i < len(stream); i++ {
		var res queryResult
		post(base2+"/v1/sessions/"+sess.ID+"/query", stream[i], &res)
		assertSame(i, refAnswers[i], res)
		fmt.Printf("query %d after restart: %-34s top=%-5v answer=%.3v  ✓ matches uninterrupted run\n",
			i+1, res.Loss, res.Top, res.Answer)
	}
	fmt.Printf("all %d post-restart answers bit-identical to the uninterrupted run\n", len(stream)-cut)
}

func readPathDemo() {
	fmt.Println("\n=== Part 3: the read path — batches and the zero-spend answer cache ===")
	mgr, srv, base := newWorld(42, "")
	defer mgr.Shutdown()
	defer srv.Close()
	var sess struct {
		ID string `json:"id"`
	}
	post(base+"/v1/sessions", map[string]any{}, &sess)

	// One round trip, five queries — including an in-batch duplicate. The
	// duplicate is served from the cache entry its first occurrence just
	// created; only four queries reach the mechanism.
	type batchResp struct {
		Results []struct {
			Result *queryResult `json:"result"`
			Error  string       `json:"error"`
		} `json:"results"`
		CacheHits int `json:"cache_hits"`
		Tops      int `json:"tops"`
	}
	batch := map[string]any{"queries": []any{
		map[string]any{"kind": "positive", "params": map[string]any{"coord": 0}},
		map[string]any{"kind": "logistic", "params": map[string]any{"temp": 0.5}},
		map[string]any{"kind": "positive", "params": map[string]any{"coord": 0}},
		map[string]any{"kind": "squared"},
		map[string]any{"kind": "halfspace", "params": map[string]any{"w": []float64{1, 1, 0}, "threshold": 0}},
	}}
	var br batchResp
	post(base+"/v1/sessions/"+sess.ID+"/queries:batch", batch, &br)
	fmt.Printf("batch of %d: %d cache hit(s), %d ⊤ answer(s) — one checkpoint write per batch on a durable server\n",
		len(br.Results), br.CacheHits, br.Tops)

	// Budget before and after a storm of repeats: identical. Any spelling
	// of the same canonical query hits the same entry.
	var before struct {
		EpsRemaining float64 `json:"eps_remaining"`
	}
	get(base+"/v1/sessions/"+sess.ID, &before)
	spellings := []map[string]any{
		{"kind": "logistic", "params": map[string]any{"temp": 0.5}},
		{"kind": "logistic"}, // temp defaults to 0.5
		{"kind": "logistic", "params": map[string]any{"margin": 0, "temp": 0.5}},
	}
	hits := 0
	for i := 0; i < 100; i++ {
		var res struct {
			Cached bool `json:"cached"`
		}
		post(base+"/v1/sessions/"+sess.ID+"/query", spellings[i%len(spellings)], &res)
		if res.Cached {
			hits++
		}
	}
	var after struct {
		EpsRemaining float64 `json:"eps_remaining"`
		QueriesUsed  int     `json:"queries_used"`
	}
	get(base+"/v1/sessions/"+sess.ID, &after)
	if before.EpsRemaining != after.EpsRemaining {
		log.Fatalf("cache hits moved the budget: %v → %v", before.EpsRemaining, after.EpsRemaining)
	}
	fmt.Printf("100 repeats across 3 spellings: %d cache hits, budget ε-remaining %.4f → %.4f (unchanged), mechanism queries used: %d\n",
		hits, before.EpsRemaining, after.EpsRemaining, after.QueriesUsed)
}

// metricsSnapshot mirrors the JSON exposition of GET /metrics?format=json.
type metricsSnapshot struct {
	Families []struct {
		Name    string `json:"name"`
		Samples []struct {
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
		} `json:"samples"`
	} `json:"families"`
}

// sum totals the named family's samples whose labels include match.
func (m *metricsSnapshot) sum(name string, match map[string]string) float64 {
	var total float64
	for _, f := range m.Families {
		if f.Name != name {
			continue
		}
	sample:
		for _, s := range f.Samples {
			for k, v := range match {
				if s.Labels[k] != v {
					continue sample
				}
			}
			total += s.Value
		}
	}
	return total
}

func metricsDemo() {
	fmt.Println("\n=== Part 4: observability — scraping /metrics over HTTP ===")
	mgr, srv, base := newWorld(42, "")
	defer mgr.Shutdown()
	defer srv.Close()

	var ver struct {
		Module    string `json:"module"`
		GoVersion string `json:"go_version"`
	}
	get(base+"/version", &ver)
	fmt.Printf("GET /version → module %s (%s)\n", ver.Module, ver.GoVersion)

	var sess struct {
		ID string `json:"id"`
	}
	post(base+"/v1/sessions", map[string]any{}, &sess)
	q := map[string]any{"kind": "logistic", "params": map[string]any{"temp": 0.5}}

	// First ask: a miss that goes through the mechanism.
	var res struct {
		Cached bool `json:"cached"`
	}
	post(base+"/v1/sessions/"+sess.ID+"/query", q, &res)
	var before metricsSnapshot
	get(base+"/metrics?format=json", &before)
	hits0 := before.sum("pmwcm_queries_total", map[string]string{"disposition": "hit"})

	// The repeat is a cache hit, and the server-side counter must move
	// with it.
	post(base+"/v1/sessions/"+sess.ID+"/query", q, &res)
	var after metricsSnapshot
	get(base+"/metrics?format=json", &after)
	hits1 := after.sum("pmwcm_queries_total", map[string]string{"disposition": "hit"})
	if !res.Cached || hits1 != hits0+1 {
		log.Fatalf("repeat query: cached=%v, hit counter %v → %v (want +1)", res.Cached, hits0, hits1)
	}
	fmt.Printf("repeat query: cached=%v, server hit counter %g → %g (+1)\n", res.Cached, hits0, hits1)

	// The per-session spend gauge is the same number the status endpoint
	// reports — one ledger, two read paths.
	var status struct {
		EpsSpent float64 `json:"eps_spent"`
	}
	get(base+"/v1/sessions/"+sess.ID, &status)
	gauge := after.sum("pmwcm_session_eps_spent", map[string]string{"session": sess.ID})
	if gauge != status.EpsSpent {
		log.Fatalf("spend gauge %v != session status eps_spent %v", gauge, status.EpsSpent)
	}
	fmt.Printf("session %s: /metrics spend gauge %.6f == status eps_spent %.6f ✓\n", sess.ID, gauge, status.EpsSpent)

	// The same registry renders Prometheus text for real scrapers.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	shown := 0
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("pmwcm_queries_total")) ||
			bytes.HasPrefix(line, []byte("pmwcm_sessions_open")) {
			fmt.Printf("  %s\n", line)
			shown++
		}
	}
	if shown == 0 {
		log.Fatal("Prometheus exposition carried no pmwcm_* samples")
	}
}

// assertSame fails the demo if a continued answer deviates by a single bit
// from the uninterrupted run's.
func assertSame(i int, want, got queryResult) {
	ok := want.Loss == got.Loss && want.Top == got.Top &&
		want.EpsRemaining == got.EpsRemaining && want.UpdatesUsed == got.UpdatesUsed &&
		len(want.Answer) == len(got.Answer)
	if ok {
		for j := range want.Answer {
			ok = ok && want.Answer[j] == got.Answer[j]
		}
	}
	if !ok {
		log.Fatalf("query %d diverged from the uninterrupted run:\nwant %+v\ngot  %+v", i+1, want, got)
	}
}

// post sends a JSON body and decodes the JSON response, failing on non-2xx.
func post(url string, body any, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&apiErr)
		log.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, apiErr.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// get decodes a JSON response, failing on non-2xx.
func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// del issues a DELETE, failing on non-2xx.
func del(url string) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("DELETE %s: HTTP %d", url, resp.StatusCode)
	}
}
