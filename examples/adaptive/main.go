// Adaptive: the generalization-error connection of paper §1.3.
//
// An adaptive analyst asks a batch of counting queries, then uses the
// answers to craft one final query that deliberately chases the sampling
// noise of the dataset (the classic "Freedman's paradox" / garden-of-
// forking-paths attack from the adaptive data analysis literature
// [DFH+15, HU14]). The final query's answer on the *sample* looks
// significant; on the *population* it is null.
//
// Answering through a differentially private mechanism limits how much the
// transcript can reveal about the sample's noise, so the private analyst's
// final query overfits far less — the phenomenon Bassily et al. [BSSU15]
// quantify using exactly the algorithms in this repository.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
)

func main() {
	const (
		dim    = 10  // hypercube dimension (k = dim probe queries)
		n      = 150 // small sample → visible sampling noise ~ 1/√n
		trials = 20
	)
	u, err := universe.NewHypercube(dim)
	if err != nil {
		log.Fatal(err)
	}
	// Uniform population: every coordinate query has true answer 1/2.
	pop := histogram.Uniform(u)

	var gapExact, gapPrivate float64
	for trial := 0; trial < trials; trial++ {
		src := sample.New(int64(1000 + trial))
		data := dataset.SampleFrom(src, pop, n)
		d := data.Histogram()

		probes := make([]*convex.LinearQuery, dim)
		for j := range probes {
			j := j
			probes[j], err = convex.NewLinearQuery(fmt.Sprintf("x%d>0", j), func(x []float64) float64 {
				if x[j] > 0 {
					return 1
				}
				return 0
			})
			if err != nil {
				log.Fatal(err)
			}
		}

		// Analyst A: sees exact sample answers.
		exactSigns := make([]float64, dim)
		for j, q := range probes {
			exactSigns[j] = signOf(q.ExactMinimize(d)[0] - 0.5)
		}

		// Analyst B: sees private PMW answers.
		srv, err := core.New(core.Config{
			Eps: 0.5, Delta: 1e-6, Alpha: 0.2, Beta: 0.05,
			K: dim + 1, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 4,
		}, data, src.Split())
		if err != nil {
			log.Fatal(err)
		}
		privSigns := make([]float64, dim)
		for j, q := range probes {
			a, err := srv.Answer(q)
			if err == core.ErrHalted {
				// Budget exhausted: the analyst learns nothing further —
				// fall back to the prior's answer 1/2 (sign +1). Less
				// information for the attack, which is the point.
				privSigns[j] = 1
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			privSigns[j] = signOf(a[0] - 0.5)
		}

		// Final adversarial query: the fraction of coordinates agreeing
		// with the observed deviations, averaged per record. Its population
		// value is exactly 1/2 by symmetry; its sample value exceeds 1/2 by
		// however much noise the analyst could see.
		overfit := func(signs []float64) float64 {
			q, err := convex.NewLinearQuery("chase-noise", func(x []float64) float64 {
				var agree float64
				for j := range signs {
					if x[j]*signs[j] > 0 {
						agree++
					}
				}
				return agree / float64(dim)
			})
			if err != nil {
				log.Fatal(err)
			}
			return q.ExactMinimize(d)[0] - 0.5 // population value is 0.5
		}
		gapExact += overfit(exactSigns)
		gapPrivate += overfit(privSigns)
	}
	gapExact /= trials
	gapPrivate /= trials

	fmt.Printf("adaptive overfitting demo (n=%d, %d probe queries, %d trials):\n", n, dim, trials)
	fmt.Printf("  final-query sample-vs-population gap, exact answers:   %+.4f\n", gapExact)
	fmt.Printf("  final-query sample-vs-population gap, private answers: %+.4f\n", gapPrivate)
	fmt.Println("\nthe exact-answer analyst reconstructs the sample's noise and overfits;")
	fmt.Println("the differentially private transcript reveals less, so the gap shrinks (§1.3).")
	if math.Abs(gapPrivate) < math.Abs(gapExact) {
		fmt.Println("observed: private < exact ✓")
	} else {
		fmt.Println("observed: no separation on these seeds (increase trials)")
	}
}

func signOf(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
