// Synthetic: release a differentially private synthetic dataset.
//
// Paper §4.3 remarks that the algorithm "can be modified to output a
// synthetic dataset (namely, the final histogram D̂t used in the execution
// of the algorithm)". This example drives the PMW server with a training
// workload of counting queries, then releases row-level synthetic data
// sampled from the final hypothesis — pure post-processing, no extra
// privacy cost — and evaluates it on a *held-out* workload the server
// never saw.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/sample"
	"repro/internal/universe"
)

func main() {
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	src := sample.New(11)
	pop, err := dataset.Skewed(g, 1.4)
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.SampleFrom(src, pop, 300000)
	d := data.Histogram()

	srv, err := core.New(core.Config{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.004, Beta: 0.05,
		K: 500, S: 1,
		Oracle:  erm.LaplaceLinear{},
		TBudget: 15,
	}, data, src.Split())
	if err != nil {
		log.Fatal(err)
	}

	// Train on 120 random halfspace counting queries.
	train := pool(src.Split(), g, 120)
	for _, q := range train {
		if _, err := srv.Answer(q); err == core.ErrHalted {
			break
		} else if err != nil {
			log.Fatal(err)
		}
	}

	// Release synthetic rows from the final hypothesis.
	synth, err := srv.SyntheticRows(src.Split(), 100000)
	if err != nil {
		log.Fatal(err)
	}
	sd := synth.Histogram()

	// Evaluate on a held-out workload.
	holdout := pool(src.Split(), g, 60)
	var worstSynth, worstUniform float64
	for _, q := range holdout {
		truth := q.ExactMinimize(d)[0]
		synthAns := q.ExactMinimize(sd)[0]
		if e := math.Abs(synthAns - truth); e > worstSynth {
			worstSynth = e
		}
		var uni float64
		buf := make([]float64, g.Dim())
		for i := 0; i < g.Size(); i++ {
			uni += q.Predicate(g.PointInto(i, buf))
		}
		uni /= float64(g.Size())
		if e := math.Abs(uni - truth); e > worstUniform {
			worstUniform = e
		}
	}
	fmt.Printf("synthetic data release (n=%d → %d synthetic rows, %d MW updates):\n",
		data.N(), synth.N(), srv.Updates())
	fmt.Printf("  worst held-out counting-query error, synthetic data:  %.4f\n", worstSynth)
	fmt.Printf("  worst held-out counting-query error, uniform baseline: %.4f\n", worstUniform)
	fmt.Printf("  privacy spent ≤ (ε=%.2g, δ=%.2g) — sampling is free post-processing\n",
		srv.Privacy().Eps, srv.Privacy().Delta)
}

// pool builds k random halfspace counting queries.
func pool(src *sample.Source, g *universe.LabeledGrid, k int) []*convex.LinearQuery {
	out := make([]*convex.LinearQuery, 0, k)
	for i := 0; i < k; i++ {
		w := src.UnitVec(g.Dim())
		thresh := (src.Float64() - 0.5) * 0.5
		lq, err := convex.NewLinearQuery(fmt.Sprintf("half%d", i), func(x []float64) float64 {
			var s float64
			for j := range w {
				s += w[j] * x[j]
			}
			if s >= thresh {
				return 1
			}
			return 0
		})
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, lq)
	}
	return out
}
