// Quickstart: answer many statistical queries on a sensitive dataset with
// the online private multiplicative weights server.
//
// This is the smallest end-to-end use of the library: build a finite data
// universe, load a dataset, start a PMW server with a privacy budget, and
// ask it queries. Linear (counting) queries are used here because their
// answers are easy to eyeball; see examples/regression and
// examples/logistic for genuine convex-minimization queries.
package main

import (
	"fmt"
	"log"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/sample"
	"repro/internal/universe"
)

func main() {
	// A universe of labeled examples: 2 features on a 3-level grid inside
	// the unit ball, labels in {−1, 0, +1}. |X| = 27.
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		log.Fatal(err)
	}

	// A sensitive dataset of 500 000 individuals drawn from a skewed
	// population. (Differential privacy gets easier as n grows; the
	// algorithm's cost depends on |X|, not n.)
	src := sample.New(42)
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.SampleFrom(src, pop, 500000)

	// The PMW server: (ε=1, δ=1e-6)-differentially private, targeting
	// excess risk α=0.005 over up to 1000 queries. For a counting query,
	// excess risk a²/2 = α means the released fraction is within
	// a = √(2α) = 0.1 of the truth.
	srv, err := core.New(core.Config{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.005, Beta: 0.05,
		K: 1000, S: 1,
		Oracle:  erm.LaplaceLinear{},
		TBudget: 12, // practical update horizon (see core.Config docs)
	}, data, src.Split())
	if err != nil {
		log.Fatal(err)
	}

	// Ask a few counting queries: "what fraction of records has feature j
	// positive?" and compare the private answers with the exact ones.
	d := data.Histogram()
	fmt.Println("query                     private  exact")
	for j := 0; j < 3; j++ {
		j := j
		q, err := convex.NewLinearQuery(fmt.Sprintf("x[%d] > 0", j), func(x []float64) float64 {
			if x[j] > 0 {
				return 1
			}
			return 0
		})
		if err != nil {
			log.Fatal(err)
		}
		private, err := srv.Answer(q)
		if err != nil {
			log.Fatal(err)
		}
		exact := q.ExactMinimize(d)
		fmt.Printf("%-25s %.4f   %.4f\n", q.Name(), private[0], exact[0])
	}
	fmt.Printf("\nserver: %d updates used, privacy spent ≤ (ε=%.2g, δ=%.2g)\n",
		srv.Updates(), srv.Privacy().Eps, srv.Privacy().Delta)
}
