// Logistic: private answers to a family of logistic-regression queries
// using the dimension-independent GLM oracle.
//
// The paper's §4.2.2 shows that for unconstrained generalized linear
// models the single-query sample complexity is independent of the ambient
// dimension d (Jain–Thakurta). This example runs the same k logistic
// queries in growing dimensions and prints the worst error of PMW with the
// GLM-reduction oracle next to PMW with the generic noisy-gradient oracle:
// the GLM column should stay roughly flat as d grows while the generic one
// drifts upward.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/histogram"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/universe"
)

func main() {
	const (
		k     = 15
		n     = 40000
		eps   = 1.0
		delta = 1e-6
		alpha = 0.15
	)
	fmt.Printf("worst excess risk over %d logistic queries (n=%d, ε=%g):\n", k, n, eps)
	fmt.Println("dim  |X|   pmw+glmreduce  pmw+noisygd")
	for _, dim := range []int{2, 4, 6} {
		g, err := universe.NewLabeledGrid(dim, 2, 1.0, 2, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		src := sample.New(int64(100 + dim))
		pop, err := dataset.Skewed(g, 1.2)
		if err != nil {
			log.Fatal(err)
		}
		data := dataset.SampleFrom(src, pop, n)
		d := data.Histogram()

		ball, err := convex.NewL2Ball(dim, 1)
		if err != nil {
			log.Fatal(err)
		}
		losses := make([]convex.Loss, k)
		for i := range losses {
			margin := (src.Float64() - 0.5) * 0.4
			temp := 0.3 + src.Float64()*0.7
			losses[i], err = convex.NewLogistic(fmt.Sprintf("logit%d", i), ball, margin, temp, 1.0)
			if err != nil {
				log.Fatal(err)
			}
		}
		s := convex.ScaleBound(losses[0])

		worst := func(oracle erm.Oracle) float64 {
			srv, err := core.New(core.Config{
				Eps: eps, Delta: delta, Alpha: alpha, Beta: 0.05,
				K: k, S: s, Oracle: oracle, TBudget: 12,
			}, data, src.Split())
			if err != nil {
				log.Fatal(err)
			}
			var w float64
			for _, l := range losses {
				theta, err := srv.Answer(l)
				if err == core.ErrHalted {
					// Update budget exhausted: answer the remaining queries
					// from the final public hypothesis (free of further
					// privacy cost — pure post-processing).
					res, err := optimize.Minimize(l, srv.Hypothesis(), optimize.Options{MaxIters: 400})
					if err != nil {
						log.Fatal(err)
					}
					theta = res.Theta
				} else if err != nil {
					log.Fatal(err)
				}
				w = math.Max(w, excess(l, theta, d))
			}
			return w
		}
		glm := worst(erm.GLMReduction{ReducedDim: 2, Iters: 40})
		gen := worst(erm.NoisyGD{Iters: 40})
		fmt.Printf("%-4d %-5d %.4f         %.4f\n", dim, g.Size(), glm, gen)
	}
}

func excess(l convex.Loss, theta []float64, d *histogram.Histogram) float64 {
	e, err := optimize.Excess(l, theta, d, optimize.Options{MaxIters: 800})
	if err != nil {
		log.Fatal(err)
	}
	return e
}
