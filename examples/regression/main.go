// Regression: answer many distinct linear-regression queries privately.
//
// The workload is the paper's motivating scenario (§1): a dataset of
// labeled examples is analyzed repeatedly — here, k = 40 distinct
// least-squares problems of the form "predict attribute ⟨a, x⟩ from the
// features" for random directions a. Three strategies answer all of them
// under the same total (ε, δ) budget:
//
//	pmw          — the paper's online PMW for CM queries (shared hypothesis)
//	composition  — independent noisy-SGD per query with a split budget
//	exact        — the non-private ceiling
//
// PMW's budget is spent only on the queries its public hypothesis cannot
// already answer, which is why its error stays near the target α while
// composition's noise grows with k.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/baseline"
	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/histogram"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/universe"
)

func main() {
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	src := sample.New(7)

	// Population with genuine linear structure: y ≈ ⟨θ*, x⟩ + noise.
	pop, err := dataset.LinearModel(src, g, []float64{0.7, -0.5}, 0.15, 30000)
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.SampleFrom(src, pop, 40000)
	d := data.Histogram()

	// k distinct squared-loss CM queries.
	const k = 40
	ball, err := convex.NewL2Ball(g.FeatureDim(), 1)
	if err != nil {
		log.Fatal(err)
	}
	losses := make([]convex.Loss, k)
	for i := range losses {
		a := src.UnitVec(g.Dim())
		losses[i], err = convex.NewSquared(fmt.Sprintf("reg%d", i), ball, a, 1.0, math.Sqrt2)
		if err != nil {
			log.Fatal(err)
		}
	}
	s := convex.ScaleBound(losses[0])
	eps, delta := 1.0, 1e-6

	// Strategy 1: PMW.
	srv, err := core.New(core.Config{
		Eps: eps, Delta: delta, Alpha: 0.15, Beta: 0.05,
		K: k, S: s, Oracle: erm.NoisyGD{Iters: 40}, TBudget: 10,
	}, data, src.Split())
	if err != nil {
		log.Fatal(err)
	}
	var pmwWorst float64
	for _, l := range losses {
		theta, err := srv.Answer(l)
		if err != nil {
			log.Fatal(err)
		}
		pmwWorst = math.Max(pmwWorst, excess(l, theta, d))
	}

	// Strategy 2: independent composition.
	comp, err := baseline.NewComposition(erm.NoisyGD{Iters: 40}, eps, delta, k)
	if err != nil {
		log.Fatal(err)
	}
	csrc := src.Split()
	var compWorst float64
	for _, l := range losses {
		theta, err := comp.Answer(csrc, l, data)
		if err != nil {
			log.Fatal(err)
		}
		compWorst = math.Max(compWorst, excess(l, theta, d))
	}

	// Strategy 3: exact (non-private).
	var exactWorst float64
	for _, l := range losses {
		theta, err := (baseline.Exact{}).Answer(l, data)
		if err != nil {
			log.Fatal(err)
		}
		exactWorst = math.Max(exactWorst, excess(l, theta, d))
	}

	fmt.Printf("worst excess empirical risk over %d regression queries (ε=%g, δ=%g, n=%d):\n",
		k, eps, delta, data.N())
	fmt.Printf("  pmw          %.4f   (%d/%d update budget spent)\n", pmwWorst, srv.Updates(), srv.Params().T)
	fmt.Printf("  composition  %.4f\n", compWorst)
	fmt.Printf("  exact        %.4f\n", exactWorst)
}

// excess measures the excess empirical risk of an answer; measurement
// failures are fatal in this demo.
func excess(l convex.Loss, theta []float64, d *histogram.Histogram) float64 {
	e, err := optimize.Excess(l, theta, d, optimize.Options{MaxIters: 800})
	if err != nil {
		log.Fatal(err)
	}
	return e
}
